//! Background resize maintenance: take grace-period waits off the writer
//! path.
//!
//! The paper's zip/unzip resizes proceed concurrently with lock-free
//! readers, but a resize still *waits* — one grace period to publish the new
//! bucket array plus one per unzip round — and historically the writer whose
//! insert crossed the load-factor threshold paid those waits inline. On a
//! write-heavy workload that is exactly the latency spike resizable tables
//! are blamed for (Maier & Sanders, "Concurrent Hash Tables: Fast and
//! General?(!)", make the same observation: decoupling migration work from
//! the writer fast path is what keeps resizable tables competitive).
//!
//! `rp-maint` provides the decoupling as a small, reusable subsystem:
//!
//! * A [`MaintTarget`] is anything owning a set of *units* (shards) whose
//!   maintenance can be advanced one bounded step at a time —
//!   `rp_shard::ShardedRpMap`'s shard set implements it on top of
//!   `rp_hash::RpHashMap`'s incremental resize state machine.
//! * A [`MaintThread`] owns a work queue of unit indices plus a condvar.
//!   Writers that hit a resize trigger *request* maintenance (a queue push
//!   and a wakeup — no waiting) and continue; the thread pops units and
//!   calls [`MaintTarget::step`] repeatedly, absorbing every
//!   `synchronize_rcu` on the writers' behalf.
//! * **Fairness:** a unit only receives [`MaintConfig::fairness_slice`]
//!   steps before being re-queued behind other waiting units, so one
//!   storming shard cannot starve the rest.
//! * **Shutdown handshake:** dropping the [`MaintHandle`] (or calling
//!   [`MaintHandle::shutdown`]) stops accepting requests, then *drains*: the
//!   thread steps every unit in [`StepMode::Drain`] until idle, so no resize
//!   is ever left half-published.
//! * **Reclamation heartbeat:** between work items (and periodically while
//!   idle) the thread runs a deferred-reclamation pass on the global RCU
//!   domain, so maintained maps can disable writer-side reclamation
//!   entirely — the other place writers used to wait for readers.
//! * **Cross-flavor grace waits:** every wait the thread absorbs — both the
//!   resize grace steps (via `rp_hash`'s incremental state machine) and the
//!   reclamation passes — goes through [`rp_rcu::GraceSync`], so it covers
//!   registered QSBR readers (`rp_hash::QsbrReadHandle`) as well as EBR
//!   guards. Maintenance is what lets QSBR-serving worker threads never
//!   synchronize at all.
//!
//! The observable guarantee, asserted by `rp-shard`'s maintenance tests via
//! [`rp_rcu::thread_synchronize_count`]: **on the maintained path, writer
//! threads never call `synchronize`** — not for resizes and not for
//! reclamation.
//!
//! # Example
//!
//! A toy target whose single unit needs three steps of "maintenance":
//!
//! ```
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//! use rp_maint::{MaintConfig, MaintStep, MaintTarget, MaintThread, StepMode};
//!
//! struct Toy(AtomicUsize);
//! impl MaintTarget for Toy {
//!     fn units(&self) -> usize {
//!         1
//!     }
//!     fn step(&self, _unit: usize, _mode: StepMode) -> MaintStep {
//!         match self.0.load(Ordering::SeqCst) {
//!             0 => MaintStep::Idle,
//!             n => {
//!                 self.0.store(n - 1, Ordering::SeqCst);
//!                 if n == 1 { MaintStep::Finished } else { MaintStep::Splice }
//!             }
//!         }
//!     }
//! }
//!
//! let toy = Arc::new(Toy(AtomicUsize::new(3)));
//! let handle = MaintThread::spawn(Arc::clone(&toy) as Arc<dyn MaintTarget>, MaintConfig::default());
//! handle.request(0);
//! handle.shutdown(); // drains before returning
//! assert_eq!(toy.0.load(Ordering::SeqCst), 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod stats;
mod thread;

pub use stats::MaintStats;
pub use thread::{MaintConfig, MaintHandle, MaintThread};

/// What one [`MaintTarget::step`] call did. Mirrors the steps of
/// `rp_hash`'s incremental resize state machine, plus [`MaintStep::Began`]
/// for the step that starts a requested resize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintStep {
    /// Nothing to do for this unit; the driver moves on.
    Idle,
    /// A requested resize was started (new table published, no waiting).
    Began,
    /// One grace period was waited for on behalf of the unit's writers.
    Grace,
    /// One bounded batch of restructuring work (e.g. an unzip splice round).
    Splice,
    /// A resize completed.
    Finished,
}

/// Whether a step may start new work or should only finish what is already
/// in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepMode {
    /// Normal operation: start requested resizes and advance them.
    Normal,
    /// Shutdown drain: complete in-progress resizes so nothing is left
    /// half-published, but do not begin new ones.
    Drain,
}

/// A set of maintenance units (shards) that a [`MaintThread`] can drive.
///
/// Implementations must make `step` safe to call from the maintenance
/// thread concurrently with the target's own writers and readers; each call
/// should perform one *bounded* unit of work (begin, one splice round, one
/// grace wait, or finish) and report what it did. The maintenance thread
/// never holds a read-side critical section, so `step` may wait for grace
/// periods.
pub trait MaintTarget: Send + Sync + 'static {
    /// Number of units (used by the shutdown drain to visit everything).
    fn units(&self) -> usize;

    /// Advances maintenance on `unit` by one bounded step.
    fn step(&self, unit: usize, mode: StepMode) -> MaintStep;
}
