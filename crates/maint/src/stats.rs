//! Maintenance counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters kept by the maintenance machinery.
#[derive(Debug, Default)]
pub(crate) struct AtomicMaintStats {
    pub(crate) requests: AtomicU64,
    pub(crate) steps: AtomicU64,
    pub(crate) began: AtomicU64,
    pub(crate) grace_waits: AtomicU64,
    pub(crate) splice_rounds: AtomicU64,
    pub(crate) resizes_finished: AtomicU64,
    pub(crate) requeues: AtomicU64,
    pub(crate) reclaim_passes: AtomicU64,
    pub(crate) worker_panics: AtomicU64,
    pub(crate) max_debt: AtomicU64,
}

impl AtomicMaintStats {
    pub(crate) fn snapshot(&self) -> MaintStats {
        MaintStats {
            requests: self.requests.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
            began: self.began.load(Ordering::Relaxed),
            grace_waits: self.grace_waits.load(Ordering::Relaxed),
            splice_rounds: self.splice_rounds.load(Ordering::Relaxed),
            resizes_finished: self.resizes_finished.load(Ordering::Relaxed),
            requeues: self.requeues.load(Ordering::Relaxed),
            reclaim_passes: self.reclaim_passes.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            max_debt: self.max_debt.load(Ordering::Relaxed),
        }
    }

    /// Raises `max_debt` to `depth` if it is larger than the current max.
    pub(crate) fn observe_debt(&self, depth: u64) {
        self.max_debt.fetch_max(depth, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of a maintenance thread's counters.
///
/// Exposed through `MaintHandle::stats` and, for maintained sharded maps,
/// through `rp_shard::ShardStats::maint`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintStats {
    /// Resize requests accepted onto the work queue.
    pub requests: u64,
    /// Total maintenance steps executed (all kinds).
    pub steps: u64,
    /// Resizes started by the maintenance thread.
    pub began: u64,
    /// Grace periods absorbed off the writer path.
    pub grace_waits: u64,
    /// Unzip splice rounds performed.
    pub splice_rounds: u64,
    /// Resizes driven to completion.
    pub resizes_finished: u64,
    /// Times a unit was re-queued after exhausting its fairness slice.
    pub requeues: u64,
    /// Deferred-reclamation passes run on the global RCU domain.
    pub reclaim_passes: u64,
    /// Panics caught by worker supervision: a `step` (or heartbeat /
    /// drain pass) unwound and was contained — the worker kept serving
    /// and the unit was re-queued at most once.
    pub worker_panics: u64,
    /// Maximum work-queue depth observed by a requesting writer — the
    /// worst resize debt any writer has seen the maintainer carrying.
    pub max_debt: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips() {
        let s = AtomicMaintStats::default();
        s.requests.fetch_add(2, Ordering::Relaxed);
        s.grace_waits.fetch_add(3, Ordering::Relaxed);
        s.observe_debt(5);
        s.observe_debt(2);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.grace_waits, 3);
        assert_eq!(snap.max_debt, 5, "observe_debt keeps the maximum");
        assert_eq!(snap.steps, 0);
    }
}
