//! The maintenance thread: work queue, condvar wakeups, fairness and the
//! shutdown drain handshake.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use rp_rcu::GraceSync;

use crate::stats::AtomicMaintStats;
use crate::{MaintStats, MaintStep, MaintTarget, StepMode};

/// Tuning knobs for a [`MaintThread`].
#[derive(Debug, Clone)]
pub struct MaintConfig {
    /// Maximum steps applied to one unit before it is re-queued behind the
    /// other waiting units (per-shard fairness under multi-shard storms).
    pub fairness_slice: usize,
    /// Run a deferred-reclamation pass on the global RCU domain whenever at
    /// least this many retired objects are pending (the maintained
    /// counterpart of `rp_hash::ResizePolicy::reclaim_threshold`).
    pub reclaim_threshold: usize,
    /// How long the thread sleeps waiting for requests before running an
    /// idle reclamation heartbeat.
    pub idle_wakeup: Duration,
}

impl Default for MaintConfig {
    fn default() -> Self {
        MaintConfig {
            fairness_slice: 8,
            reclaim_threshold: 256,
            idle_wakeup: Duration::from_millis(50),
        }
    }
}

/// State shared between requesters, the maintenance thread and the handle.
struct MaintShared {
    queue: Mutex<QueueState>,
    wakeup: Condvar,
    stats: AtomicMaintStats,
}

struct QueueState {
    items: VecDeque<usize>,
    shutdown: bool,
}

/// Spawns and owns maintenance threads. This is a namespace type; see
/// [`MaintThread::spawn`].
pub struct MaintThread;

impl MaintThread {
    /// Spawns a maintenance thread driving `target` and returns its handle.
    ///
    /// The thread sleeps until a unit is requested via
    /// [`MaintHandle::request`], runs periodic reclamation heartbeats while
    /// idle, and exits — after draining all in-progress resizes — when the
    /// handle shuts down.
    pub fn spawn(target: Arc<dyn MaintTarget>, config: MaintConfig) -> MaintHandle {
        let shared = Arc::new(MaintShared {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                shutdown: false,
            }),
            wakeup: Condvar::new(),
            stats: AtomicMaintStats::default(),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rp-maint".into())
                .spawn(move || run(target, shared, config))
                .expect("failed to spawn maintenance thread")
        };
        MaintHandle {
            shared,
            thread: Some(thread),
        }
    }
}

/// Owner handle for a running maintenance thread.
///
/// Dropping the handle shuts the thread down: no further requests are
/// accepted, every in-progress resize is drained to completion, and the
/// thread is joined. Use [`MaintHandle::shutdown`] for an explicit,
/// nameable version of the same handshake.
pub struct MaintHandle {
    shared: Arc<MaintShared>,
    thread: Option<JoinHandle<()>>,
}

impl MaintHandle {
    /// Enqueues maintenance for `unit` and wakes the thread. Never blocks
    /// and never waits for readers — this is the entire cost a writer pays
    /// for triggering a resize on the maintained path.
    ///
    /// Requests made after shutdown began are ignored.
    pub fn request(&self, unit: usize) {
        let depth = {
            let mut q = self.shared.queue.lock();
            if q.shutdown {
                return;
            }
            q.items.push_back(unit);
            q.items.len() as u64
        };
        self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        // `depth` is the resize debt this writer observed: how many units
        // were waiting for the maintainer at the moment of its request.
        self.shared.stats.observe_debt(depth);
        rp_obs::global().maint.queue_depth.set(depth);
        self.shared.wakeup.notify_one();
    }

    /// A snapshot of the thread's counters.
    pub fn stats(&self) -> MaintStats {
        self.shared.stats.snapshot()
    }

    /// Number of units currently waiting on the work queue.
    pub fn pending(&self) -> usize {
        self.shared.queue.lock().items.len()
    }

    /// Shuts the thread down: stops accepting requests, waits for it to
    /// drain every in-progress resize, and joins it.
    ///
    /// Idempotent; also runs on drop.
    ///
    /// # Panics
    ///
    /// Panics if called (or dropped) from inside a read-side critical
    /// section of the global RCU domain: the drain waits for grace periods,
    /// which can never complete while the calling thread holds a guard, so
    /// the join would deadlock silently otherwise.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
        }
        self.shared.wakeup.notify_all();
        let Some(thread) = self.thread.take() else {
            return;
        };
        if rp_rcu::global_read_nesting() > 0 {
            // The drain synchronizes; joining here would wait forever for
            // our own guard to drop. Detach the thread (it exits once the
            // guard is gone) and make the bug loud — unless we are already
            // unwinding, where a second panic would abort.
            if std::thread::panicking() {
                return;
            }
            panic!(
                "MaintHandle shut down while inside a read-side critical section; \
                 drop the RcuGuard first (the drain would otherwise deadlock)"
            );
        }
        let _ = thread.join();
    }
}

impl Drop for MaintHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for MaintHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintHandle")
            .field("pending", &self.pending())
            .field("stats", &self.stats())
            .finish()
    }
}

/// What the queue handed the worker loop.
enum Next {
    Unit(usize),
    Heartbeat,
    Shutdown,
}

fn run(target: Arc<dyn MaintTarget>, shared: Arc<MaintShared>, config: MaintConfig) {
    loop {
        let next = {
            let mut q = shared.queue.lock();
            if let Some(unit) = q.items.pop_front() {
                Next::Unit(unit)
            } else if q.shutdown {
                Next::Shutdown
            } else {
                shared.wakeup.wait_for(&mut q, config.idle_wakeup);
                if let Some(unit) = q.items.pop_front() {
                    Next::Unit(unit)
                } else if q.shutdown {
                    Next::Shutdown
                } else {
                    Next::Heartbeat
                }
            }
        };
        match next {
            Next::Shutdown => break,
            Next::Heartbeat => {
                // Idle: check for overdue grace periods first — if a stalled
                // reader exists, the reclamation pass below would hang in the
                // same wait it is trying to absorb, so flag it before joining
                // it.
                rp_rcu::stall::check_global();
                // Absorb deferred reclamation so maintained maps never have
                // to run it from a writer. The pass goes through `GraceSync`,
                // so it waits for QSBR readers too whenever the QSBR read
                // path is in use.
                if GraceSync::global().reclaim_if_pending(config.reclaim_threshold) {
                    shared.stats.reclaim_passes.fetch_add(1, Ordering::Relaxed);
                }
            }
            Next::Unit(unit) => {
                let mut steps = 0_usize;
                let slice_timer = rp_obs::timer();
                loop {
                    let step = target.step(unit, StepMode::Normal);
                    record(&shared.stats, step);
                    if step == MaintStep::Idle {
                        break;
                    }
                    steps += 1;
                    if steps >= config.fairness_slice.max(1) {
                        // Fairness: give other units a turn; this one goes
                        // to the back of the queue.
                        let requeue = {
                            let mut q = shared.queue.lock();
                            if q.shutdown {
                                false // the drain below will finish it
                            } else {
                                q.items.push_back(unit);
                                true
                            }
                        };
                        if requeue {
                            shared.stats.requeues.fetch_add(1, Ordering::Relaxed);
                        }
                        break;
                    }
                }
                if steps > 0 {
                    // Telemetry: slice duration (the writer-visible cost the
                    // maintainer absorbed in one fairness turn).
                    if let Some(ns) = rp_obs::elapsed_ns(slice_timer) {
                        let obs = rp_obs::global();
                        obs.maint.slice_ns.record(ns);
                        obs.maint.slices_total.inc();
                        obs.trace.record(rp_obs::TraceKind::MaintSlice, ns);
                        obs.maint
                            .queue_depth
                            .set(shared.queue.lock().items.len() as u64);
                    }
                }
                if GraceSync::global().reclaim_if_pending(config.reclaim_threshold) {
                    shared.stats.reclaim_passes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    // Shutdown drain: every unit is stepped in Drain mode until idle, so no
    // resize is left half-published. Requested-but-unstarted resizes are
    // dropped (Drain mode never begins new work); in-progress ones complete.
    for unit in 0..target.units() {
        loop {
            let step = target.step(unit, StepMode::Drain);
            if step == MaintStep::Idle {
                break;
            }
            record(&shared.stats, step);
        }
    }
    // Leave no deferred destructors behind either.
    if GraceSync::global().reclaim_if_pending(1) {
        shared.stats.reclaim_passes.fetch_add(1, Ordering::Relaxed);
    }
}

fn record(stats: &AtomicMaintStats, step: MaintStep) {
    if step != MaintStep::Idle {
        stats.steps.fetch_add(1, Ordering::Relaxed);
    }
    let counter = match step {
        MaintStep::Idle => return,
        MaintStep::Began => &stats.began,
        MaintStep::Grace => &stats.grace_waits,
        MaintStep::Splice => &stats.splice_rounds,
        MaintStep::Finished => &stats.resizes_finished,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A target where each unit is a countdown: `step` decrements it, the
    /// step before zero reports `Finished`, and zero reports `Idle`. In
    /// `Drain` mode, countdowns at their initial value (never started) stay
    /// untouched.
    struct Countdown {
        units: Vec<AtomicUsize>,
        initial: usize,
        drain_steps: AtomicUsize,
        normal_step_delay_ms: u64,
    }

    impl Countdown {
        fn new(units: usize, initial: usize) -> Self {
            Self::with_delay(units, initial, 0)
        }

        fn with_delay(units: usize, initial: usize, normal_step_delay_ms: u64) -> Self {
            Countdown {
                units: (0..units).map(|_| AtomicUsize::new(initial)).collect(),
                initial,
                drain_steps: AtomicUsize::new(0),
                normal_step_delay_ms,
            }
        }
    }

    impl MaintTarget for Countdown {
        fn units(&self) -> usize {
            self.units.len()
        }

        fn step(&self, unit: usize, mode: StepMode) -> MaintStep {
            let remaining = self.units[unit].load(Ordering::SeqCst);
            if remaining == 0 {
                return MaintStep::Idle;
            }
            match mode {
                StepMode::Drain => {
                    if remaining == self.initial {
                        // Not started: a drain must not begin new work.
                        return MaintStep::Idle;
                    }
                    self.drain_steps.fetch_add(1, Ordering::SeqCst);
                }
                StepMode::Normal => {
                    // Slow normal steps let the shutdown test reliably catch
                    // the unit mid-flight.
                    std::thread::sleep(Duration::from_millis(self.normal_step_delay_ms));
                }
            }
            self.units[unit].store(remaining - 1, Ordering::SeqCst);
            match remaining {
                1 => MaintStep::Finished,
                r if r == self.initial => MaintStep::Began,
                _ => MaintStep::Splice,
            }
        }
    }

    #[test]
    fn requested_units_run_to_completion() {
        let target = Arc::new(Countdown::new(4, 3));
        let handle = MaintThread::spawn(
            Arc::clone(&target) as Arc<dyn MaintTarget>,
            MaintConfig::default(),
        );
        handle.request(1);
        handle.request(3);
        // Wait (bounded) for the thread to drain both units.
        for _ in 0..1000 {
            if target.units[1].load(Ordering::SeqCst) == 0
                && target.units[3].load(Ordering::SeqCst) == 0
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(target.units[1].load(Ordering::SeqCst), 0);
        assert_eq!(target.units[3].load(Ordering::SeqCst), 0);
        assert_eq!(target.units[0].load(Ordering::SeqCst), 3, "unrequested");
        let stats = handle.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.resizes_finished, 2);
        assert_eq!(stats.began, 2);
        assert!(stats.max_debt >= 1);
        handle.shutdown();
    }

    #[test]
    fn fairness_slice_requeues_long_units() {
        let target = Arc::new(Countdown::new(2, 10));
        let handle = MaintThread::spawn(
            Arc::clone(&target) as Arc<dyn MaintTarget>,
            MaintConfig {
                fairness_slice: 2,
                ..MaintConfig::default()
            },
        );
        handle.request(0);
        handle.request(1);
        for _ in 0..1000 {
            if target.units.iter().all(|u| u.load(Ordering::SeqCst) == 0) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(target.units.iter().all(|u| u.load(Ordering::SeqCst) == 0));
        let stats = handle.stats();
        assert!(
            stats.requeues >= 2,
            "10-step units with a 2-step slice must be re-queued: {stats:?}"
        );
        handle.shutdown();
    }

    #[test]
    fn shutdown_drains_in_progress_work_only() {
        let target = Arc::new(Countdown::with_delay(3, 100, 5));
        let handle = MaintThread::spawn(
            Arc::clone(&target) as Arc<dyn MaintTarget>,
            MaintConfig {
                fairness_slice: 1,
                ..MaintConfig::default()
            },
        );
        handle.request(0);
        // Let the thread take at least one step on unit 0.
        for _ in 0..1000 {
            if target.units[0].load(Ordering::SeqCst) < 100 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.shutdown();
        // The in-progress unit was drained to completion...
        assert_eq!(target.units[0].load(Ordering::SeqCst), 0);
        assert!(target.drain_steps.load(Ordering::SeqCst) > 0);
        // ...while never-started units were left alone.
        assert_eq!(target.units[1].load(Ordering::SeqCst), 100);
        assert_eq!(target.units[2].load(Ordering::SeqCst), 100);
    }

    #[test]
    fn requests_after_shutdown_are_ignored() {
        let target = Arc::new(Countdown::new(1, 5));
        let mut handle = MaintThread::spawn(
            Arc::clone(&target) as Arc<dyn MaintTarget>,
            MaintConfig::default(),
        );
        handle.shutdown_inner();
        handle.request(0);
        assert_eq!(handle.stats().requests, 0);
        assert_eq!(target.units[0].load(Ordering::SeqCst), 5);
    }
}
