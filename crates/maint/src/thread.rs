//! The maintenance worker pool: one work queue, N worker threads, condvar
//! wakeups, per-unit exclusion, fairness and the shutdown drain handshake.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use rp_rcu::GraceSync;

use crate::stats::AtomicMaintStats;
use crate::{MaintStats, MaintStep, MaintTarget, StepMode};

/// Tuning knobs for a [`MaintThread`].
#[derive(Debug, Clone)]
pub struct MaintConfig {
    /// Maintenance worker threads sharing the one work queue. Each unit is
    /// stepped by at most one worker at a time (per-unit exclusion), so
    /// extra workers add *across-unit* parallelism: two shards can resize
    /// concurrently, and a long grace-period wait on one shard no longer
    /// stalls every other shard's maintenance.
    pub workers: usize,
    /// Maximum steps applied to one unit before it is re-queued behind the
    /// other waiting units (per-shard fairness under multi-shard storms).
    pub fairness_slice: usize,
    /// Run a deferred-reclamation pass on the global RCU domain whenever at
    /// least this many retired objects are pending (the maintained
    /// counterpart of `rp_hash::ResizePolicy::reclaim_threshold`).
    pub reclaim_threshold: usize,
    /// How long an idle worker sleeps waiting for requests before running
    /// an idle reclamation heartbeat.
    pub idle_wakeup: Duration,
}

impl Default for MaintConfig {
    fn default() -> Self {
        MaintConfig {
            workers: 1,
            fairness_slice: 8,
            reclaim_threshold: 256,
            idle_wakeup: Duration::from_millis(50),
        }
    }
}

/// State shared between requesters, the maintenance workers and the handle.
struct MaintShared {
    queue: Mutex<QueueState>,
    wakeup: Condvar,
    stats: AtomicMaintStats,
    /// Workers that have observed shutdown and left the main loop. The
    /// *last* one to exit runs the drain sweep — by then no other worker
    /// can be mid-step, so the sweep sees every unit quiesced.
    exited: AtomicUsize,
}

struct QueueState {
    items: VecDeque<usize>,
    /// Units currently being stepped by some worker. A queued unit whose
    /// entry is in here is skipped (not popped) until its worker returns
    /// it, which is what keeps two workers out of one unit's resize state
    /// machine.
    in_flight: Vec<usize>,
    /// Units that panicked mid-step and were re-queued by the supervisor.
    /// A unit in this set that panics *again* is dropped instead of
    /// re-queued (re-queue **once**), so a deterministically-poisoned unit
    /// cannot wedge the pool in a panic loop. A clean (non-panicking)
    /// slice clears the mark.
    panic_requeued: Vec<usize>,
    shutdown: bool,
}

impl QueueState {
    /// Pops the first queued unit that no worker is currently stepping,
    /// marking it in-flight.
    fn pop_available(&mut self) -> Option<usize> {
        let pos = self
            .items
            .iter()
            .position(|unit| !self.in_flight.contains(unit))?;
        let unit = self.items.remove(pos).expect("position came from iter");
        self.in_flight.push(unit);
        Some(unit)
    }
}

/// Spawns and owns maintenance threads. This is a namespace type; see
/// [`MaintThread::spawn`].
pub struct MaintThread;

impl MaintThread {
    /// Spawns [`MaintConfig::workers`] maintenance threads driving `target`
    /// and returns their shared handle.
    ///
    /// Workers sleep until a unit is requested via [`MaintHandle::request`],
    /// run periodic reclamation heartbeats while idle (worker 0 only — one
    /// heartbeat per pool is enough), and exit — the last one draining all
    /// in-progress resizes — when the handle shuts down.
    pub fn spawn(target: Arc<dyn MaintTarget>, config: MaintConfig) -> MaintHandle {
        let workers = config.workers.max(1);
        let shared = Arc::new(MaintShared {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                in_flight: Vec::new(),
                panic_requeued: Vec::new(),
                shutdown: false,
            }),
            wakeup: Condvar::new(),
            stats: AtomicMaintStats::default(),
            exited: AtomicUsize::new(0),
        });
        let threads = (0..workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                let target = Arc::clone(&target);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("rp-maint-{idx}"))
                    .spawn(move || {
                        // Supervision: unit-level panics are contained
                        // inside `run` (the unit is re-queued once); a
                        // panic that escapes anyway — from a heartbeat
                        // reclamation pass or the shutdown drain — is
                        // caught here and the worker re-enters its loop,
                        // i.e. it is respawned in place on the same
                        // thread. The pool never silently loses a worker.
                        loop {
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                run(
                                    idx,
                                    workers,
                                    Arc::clone(&target),
                                    Arc::clone(&shared),
                                    config.clone(),
                                )
                            }));
                            match result {
                                Ok(()) => break,
                                Err(_) => {
                                    shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                                    let obs = rp_obs::global();
                                    obs.maint.worker_panics_total.inc();
                                    obs.trace.record(rp_obs::TraceKind::MaintPanic, idx as u64);
                                }
                            }
                        }
                    })
                    .expect("failed to spawn maintenance worker")
            })
            .collect();
        MaintHandle { shared, threads }
    }
}

/// Owner handle for a running maintenance worker pool.
///
/// Dropping the handle shuts the pool down: no further requests are
/// accepted, every in-progress resize is drained to completion, and the
/// workers are joined. Use [`MaintHandle::shutdown`] for an explicit,
/// nameable version of the same handshake.
pub struct MaintHandle {
    shared: Arc<MaintShared>,
    threads: Vec<JoinHandle<()>>,
}

impl MaintHandle {
    /// Enqueues maintenance for `unit` and wakes the thread. Never blocks
    /// and never waits for readers — this is the entire cost a writer pays
    /// for triggering a resize on the maintained path.
    ///
    /// Requests made after shutdown began are ignored.
    pub fn request(&self, unit: usize) {
        let depth = {
            let mut q = self.shared.queue.lock();
            if q.shutdown {
                return;
            }
            q.items.push_back(unit);
            q.items.len() as u64
        };
        self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        // `depth` is the resize debt this writer observed: how many units
        // were waiting for the maintainer at the moment of its request.
        self.shared.stats.observe_debt(depth);
        rp_obs::global().maint.queue_depth.set(depth);
        self.shared.wakeup.notify_one();
    }

    /// A snapshot of the thread's counters.
    pub fn stats(&self) -> MaintStats {
        self.shared.stats.snapshot()
    }

    /// Number of units currently waiting on the work queue.
    pub fn pending(&self) -> usize {
        self.shared.queue.lock().items.len()
    }

    /// Shuts the pool down: stops accepting requests, waits for the
    /// workers to drain every in-progress resize, and joins them.
    ///
    /// Idempotent; also runs on drop.
    ///
    /// # Panics
    ///
    /// Panics if called (or dropped) from inside a read-side critical
    /// section of the global RCU domain: the drain waits for grace periods,
    /// which can never complete while the calling thread holds a guard, so
    /// the join would deadlock silently otherwise.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
        }
        self.shared.wakeup.notify_all();
        if self.threads.is_empty() {
            return;
        }
        if rp_rcu::global_read_nesting() > 0 {
            // The drain synchronizes; joining here would wait forever for
            // our own guard to drop. Detach the workers (they exit once the
            // guard is gone) and make the bug loud — unless we are already
            // unwinding, where a second panic would abort.
            self.threads.clear();
            if std::thread::panicking() {
                return;
            }
            panic!(
                "MaintHandle shut down while inside a read-side critical section; \
                 drop the RcuGuard first (the drain would otherwise deadlock)"
            );
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for MaintHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for MaintHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintHandle")
            .field("pending", &self.pending())
            .field("stats", &self.stats())
            .finish()
    }
}

/// What the queue handed the worker loop.
enum Next {
    Unit(usize),
    Heartbeat,
    Shutdown,
}

fn run(
    idx: usize,
    workers: usize,
    target: Arc<dyn MaintTarget>,
    shared: Arc<MaintShared>,
    config: MaintConfig,
) {
    // Each maintenance worker is a dedicated synchronizer: *it* waits for
    // grace periods so writers never do. The per-worker baseline lets the
    // exit assertion below verify the division of labor from this side —
    // whatever this worker synchronized, the writers did not.
    let sync_baseline = rp_rcu::thread_synchronize_count();
    loop {
        let next = {
            let mut q = shared.queue.lock();
            if let Some(unit) = q.pop_available() {
                Next::Unit(unit)
            } else if q.shutdown {
                Next::Shutdown
            } else {
                shared.wakeup.wait_for(&mut q, config.idle_wakeup);
                if let Some(unit) = q.pop_available() {
                    Next::Unit(unit)
                } else if q.shutdown {
                    Next::Shutdown
                } else {
                    Next::Heartbeat
                }
            }
        };
        match next {
            Next::Shutdown => break,
            Next::Heartbeat => {
                // One heartbeat per pool is enough; workers 1..N just go
                // back to waiting.
                if idx != 0 {
                    continue;
                }
                // Idle: check for overdue grace periods first — if a stalled
                // reader exists, the reclamation pass below would hang in the
                // same wait it is trying to absorb, so flag it before joining
                // it.
                rp_rcu::stall::check_global();
                // Absorb deferred reclamation so maintained maps never have
                // to run it from a writer. The pass goes through `GraceSync`,
                // so it waits for QSBR readers too whenever the QSBR read
                // path is in use.
                if GraceSync::global().reclaim_if_pending(config.reclaim_threshold) {
                    shared.stats.reclaim_passes.fetch_add(1, Ordering::Relaxed);
                }
            }
            Next::Unit(unit) => {
                let mut steps = 0_usize;
                let mut exhausted_slice = false;
                let slice_timer = rp_obs::timer();
                // Panic containment: a `target.step` that unwinds (an
                // injected failpoint, a bug in one shard's resize) must
                // not kill the worker — the other units still need
                // maintenance. The unit's in-flight mark is cleared and
                // the unit is re-queued **once** so a transient panic gets
                // a retry while a deterministic one cannot loop forever.
                let outcome = catch_unwind(AssertUnwindSafe(|| loop {
                    let step = target.step(unit, StepMode::Normal);
                    record(&shared.stats, step);
                    if step == MaintStep::Idle {
                        break;
                    }
                    steps += 1;
                    if steps >= config.fairness_slice.max(1) {
                        // Fairness: give other units a turn; this one goes
                        // to the back of the queue.
                        exhausted_slice = true;
                        break;
                    }
                }));
                if outcome.is_err() {
                    shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                    let obs = rp_obs::global();
                    obs.maint.worker_panics_total.inc();
                    obs.trace.record(rp_obs::TraceKind::MaintPanic, unit as u64);
                    let mut q = shared.queue.lock();
                    q.in_flight.retain(|&held| held != unit);
                    if !q.shutdown && !q.panic_requeued.contains(&unit) {
                        q.panic_requeued.push(unit);
                        q.items.push_back(unit);
                        shared.stats.requeues.fetch_add(1, Ordering::Relaxed);
                        shared.wakeup.notify_one();
                    }
                    continue;
                }
                // Return the unit: clear its in-flight mark (other workers
                // may step it again) and requeue it if its slice ran out.
                {
                    let mut q = shared.queue.lock();
                    q.in_flight.retain(|&held| held != unit);
                    // A clean slice proves the unit healthy again: it earns
                    // back its one post-panic retry.
                    q.panic_requeued.retain(|&held| held != unit);
                    if exhausted_slice && !q.shutdown {
                        q.items.push_back(unit);
                        shared.stats.requeues.fetch_add(1, Ordering::Relaxed);
                        shared.wakeup.notify_one();
                    }
                    // (under shutdown the drain below finishes the unit)
                }
                if steps > 0 {
                    // Telemetry: slice duration (the writer-visible cost the
                    // maintainer absorbed in one fairness turn).
                    if let Some(ns) = rp_obs::elapsed_ns(slice_timer) {
                        let obs = rp_obs::global();
                        obs.maint.slice_ns.record(ns);
                        obs.maint.slices_total.inc();
                        obs.trace.record(rp_obs::TraceKind::MaintSlice, ns);
                        obs.maint
                            .queue_depth
                            .set(shared.queue.lock().items.len() as u64);
                    }
                }
                if GraceSync::global().reclaim_if_pending(config.reclaim_threshold) {
                    shared.stats.reclaim_passes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    // The last worker out runs the shutdown drain: every other worker has
    // already left its loop (the `exited` count proves it), so no unit is
    // mid-step and the sweep below sees them all quiesced. Every unit is
    // stepped in Drain mode until idle, so no resize is left
    // half-published. Requested-but-unstarted resizes are dropped (Drain
    // mode never begins new work); in-progress ones complete.
    let exited = shared.exited.fetch_add(1, Ordering::AcqRel) + 1;
    if exited == workers {
        for unit in 0..target.units() {
            // A unit that panics mid-drain is abandoned (not retried:
            // the process is shutting down) so the remaining units still
            // get their drain sweep.
            let outcome = catch_unwind(AssertUnwindSafe(|| loop {
                let step = target.step(unit, StepMode::Drain);
                if step == MaintStep::Idle {
                    break;
                }
                record(&shared.stats, step);
            }));
            if outcome.is_err() {
                shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                let obs = rp_obs::global();
                obs.maint.worker_panics_total.inc();
                obs.trace.record(rp_obs::TraceKind::MaintPanic, unit as u64);
            }
        }
        // Leave no deferred destructors behind either.
        if GraceSync::global().reclaim_if_pending(1) {
            shared.stats.reclaim_passes.fetch_add(1, Ordering::Relaxed);
        }
    }
    // The writers-never-synchronize invariant, asserted from the worker's
    // side: grace-period waits happened *here* (or not at all), never on a
    // requesting thread — a worker that somehow never synchronized is fine,
    // one whose count went *backwards* would mean the thread-local was
    // corrupted.
    debug_assert!(
        rp_rcu::thread_synchronize_count() >= sync_baseline,
        "maintenance worker {idx}'s synchronize count regressed"
    );
}

fn record(stats: &AtomicMaintStats, step: MaintStep) {
    if step != MaintStep::Idle {
        stats.steps.fetch_add(1, Ordering::Relaxed);
    }
    let counter = match step {
        MaintStep::Idle => return,
        MaintStep::Began => &stats.began,
        MaintStep::Grace => &stats.grace_waits,
        MaintStep::Splice => &stats.splice_rounds,
        MaintStep::Finished => &stats.resizes_finished,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A target where each unit is a countdown: `step` decrements it, the
    /// step before zero reports `Finished`, and zero reports `Idle`. In
    /// `Drain` mode, countdowns at their initial value (never started) stay
    /// untouched.
    struct Countdown {
        units: Vec<AtomicUsize>,
        initial: usize,
        drain_steps: AtomicUsize,
        normal_step_delay_ms: u64,
    }

    impl Countdown {
        fn new(units: usize, initial: usize) -> Self {
            Self::with_delay(units, initial, 0)
        }

        fn with_delay(units: usize, initial: usize, normal_step_delay_ms: u64) -> Self {
            Countdown {
                units: (0..units).map(|_| AtomicUsize::new(initial)).collect(),
                initial,
                drain_steps: AtomicUsize::new(0),
                normal_step_delay_ms,
            }
        }
    }

    impl MaintTarget for Countdown {
        fn units(&self) -> usize {
            self.units.len()
        }

        fn step(&self, unit: usize, mode: StepMode) -> MaintStep {
            let remaining = self.units[unit].load(Ordering::SeqCst);
            if remaining == 0 {
                return MaintStep::Idle;
            }
            match mode {
                StepMode::Drain => {
                    if remaining == self.initial {
                        // Not started: a drain must not begin new work.
                        return MaintStep::Idle;
                    }
                    self.drain_steps.fetch_add(1, Ordering::SeqCst);
                }
                StepMode::Normal => {
                    // Slow normal steps let the shutdown test reliably catch
                    // the unit mid-flight.
                    std::thread::sleep(Duration::from_millis(self.normal_step_delay_ms));
                }
            }
            self.units[unit].store(remaining - 1, Ordering::SeqCst);
            match remaining {
                1 => MaintStep::Finished,
                r if r == self.initial => MaintStep::Began,
                _ => MaintStep::Splice,
            }
        }
    }

    #[test]
    fn requested_units_run_to_completion() {
        let target = Arc::new(Countdown::new(4, 3));
        let handle = MaintThread::spawn(
            Arc::clone(&target) as Arc<dyn MaintTarget>,
            MaintConfig::default(),
        );
        handle.request(1);
        handle.request(3);
        // Wait (bounded) for the thread to drain both units.
        for _ in 0..1000 {
            if target.units[1].load(Ordering::SeqCst) == 0
                && target.units[3].load(Ordering::SeqCst) == 0
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(target.units[1].load(Ordering::SeqCst), 0);
        assert_eq!(target.units[3].load(Ordering::SeqCst), 0);
        assert_eq!(target.units[0].load(Ordering::SeqCst), 3, "unrequested");
        let stats = handle.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.resizes_finished, 2);
        assert_eq!(stats.began, 2);
        assert!(stats.max_debt >= 1);
        handle.shutdown();
    }

    #[test]
    fn fairness_slice_requeues_long_units() {
        let target = Arc::new(Countdown::new(2, 10));
        let handle = MaintThread::spawn(
            Arc::clone(&target) as Arc<dyn MaintTarget>,
            MaintConfig {
                fairness_slice: 2,
                ..MaintConfig::default()
            },
        );
        handle.request(0);
        handle.request(1);
        for _ in 0..1000 {
            if target.units.iter().all(|u| u.load(Ordering::SeqCst) == 0) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(target.units.iter().all(|u| u.load(Ordering::SeqCst) == 0));
        let stats = handle.stats();
        assert!(
            stats.requeues >= 2,
            "10-step units with a 2-step slice must be re-queued: {stats:?}"
        );
        handle.shutdown();
    }

    #[test]
    fn shutdown_drains_in_progress_work_only() {
        let target = Arc::new(Countdown::with_delay(3, 100, 5));
        let handle = MaintThread::spawn(
            Arc::clone(&target) as Arc<dyn MaintTarget>,
            MaintConfig {
                fairness_slice: 1,
                ..MaintConfig::default()
            },
        );
        handle.request(0);
        // Let the thread take at least one step on unit 0.
        for _ in 0..1000 {
            if target.units[0].load(Ordering::SeqCst) < 100 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.shutdown();
        // The in-progress unit was drained to completion...
        assert_eq!(target.units[0].load(Ordering::SeqCst), 0);
        assert!(target.drain_steps.load(Ordering::SeqCst) > 0);
        // ...while never-started units were left alone.
        assert_eq!(target.units[1].load(Ordering::SeqCst), 100);
        assert_eq!(target.units[2].load(Ordering::SeqCst), 100);
    }

    #[test]
    fn a_pool_of_workers_drains_many_units() {
        let target = Arc::new(Countdown::new(8, 5));
        let sync_before = rp_rcu::thread_synchronize_count();
        let handle = MaintThread::spawn(
            Arc::clone(&target) as Arc<dyn MaintTarget>,
            MaintConfig {
                workers: 3,
                fairness_slice: 2,
                ..MaintConfig::default()
            },
        );
        for unit in 0..8 {
            handle.request(unit);
        }
        for _ in 0..2000 {
            if target.units.iter().all(|u| u.load(Ordering::SeqCst) == 0) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            target.units.iter().all(|u| u.load(Ordering::SeqCst) == 0),
            "all units drained by the pool"
        );
        let stats = handle.stats();
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.resizes_finished, 8);
        handle.shutdown();
        // Writers never synchronize: all grace-period waits this pool
        // needed happened on its own workers, none on the requesting
        // thread.
        assert_eq!(
            rp_rcu::thread_synchronize_count(),
            sync_before,
            "the requesting thread must never wait for a grace period"
        );
    }

    /// A target that detects two workers inside the same unit's `step` at
    /// once — the per-unit exclusion the shared `in_flight` set must
    /// provide, since a resize state machine is single-writer.
    struct Exclusive {
        remaining: Vec<AtomicUsize>,
        inside: Vec<AtomicUsize>,
        overlaps: AtomicUsize,
    }

    impl MaintTarget for Exclusive {
        fn units(&self) -> usize {
            self.remaining.len()
        }

        fn step(&self, unit: usize, _mode: StepMode) -> MaintStep {
            let remaining = self.remaining[unit].load(Ordering::SeqCst);
            if remaining == 0 {
                return MaintStep::Idle;
            }
            if self.inside[unit].fetch_add(1, Ordering::SeqCst) != 0 {
                self.overlaps.fetch_add(1, Ordering::SeqCst);
            }
            // Dwell long enough that a second worker entering this unit
            // would reliably overlap.
            std::thread::sleep(Duration::from_millis(1));
            self.inside[unit].fetch_sub(1, Ordering::SeqCst);
            self.remaining[unit].store(remaining - 1, Ordering::SeqCst);
            if remaining == 1 {
                MaintStep::Finished
            } else {
                MaintStep::Splice
            }
        }
    }

    #[test]
    fn one_unit_is_never_stepped_by_two_workers_at_once() {
        let target = Arc::new(Exclusive {
            remaining: (0..2).map(|_| AtomicUsize::new(24)).collect(),
            inside: (0..2).map(|_| AtomicUsize::new(0)).collect(),
            overlaps: AtomicUsize::new(0),
        });
        let handle = MaintThread::spawn(
            Arc::clone(&target) as Arc<dyn MaintTarget>,
            MaintConfig {
                workers: 4,
                // One step per slice maximizes queue churn: units bounce
                // between workers constantly, which is exactly when a
                // missing in-flight mark would let two workers collide.
                fairness_slice: 1,
                ..MaintConfig::default()
            },
        );
        // Duplicate requests for the same units put multiple queue entries
        // in play at once — pop_available must hand duplicates to at most
        // one worker at a time.
        for _ in 0..4 {
            handle.request(0);
            handle.request(1);
        }
        for _ in 0..5000 {
            if target
                .remaining
                .iter()
                .all(|u| u.load(Ordering::SeqCst) == 0)
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(target
            .remaining
            .iter()
            .all(|u| u.load(Ordering::SeqCst) == 0));
        assert_eq!(
            target.overlaps.load(Ordering::SeqCst),
            0,
            "two workers entered the same unit's step concurrently"
        );
        handle.shutdown();
    }

    #[test]
    fn requests_after_shutdown_are_ignored() {
        let target = Arc::new(Countdown::new(1, 5));
        let mut handle = MaintThread::spawn(
            Arc::clone(&target) as Arc<dyn MaintTarget>,
            MaintConfig::default(),
        );
        handle.shutdown_inner();
        handle.request(0);
        assert_eq!(handle.stats().requests, 0);
        assert_eq!(target.units[0].load(Ordering::SeqCst), 5);
    }
}
