//! Chain nodes.

use std::sync::atomic::AtomicPtr;

/// A single list node.
///
/// The `next` pointer is the only mutable field; the payload is immutable
/// once the node has been published, which is what lets readers dereference
/// it without synchronisation.
pub(crate) struct Node<T> {
    pub(crate) next: AtomicPtr<Node<T>>,
    pub(crate) data: T,
}

impl<T> Node<T> {
    /// Allocates a detached node (its `next` pointer is null).
    pub(crate) fn alloc(data: T) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(std::ptr::null_mut()),
            data,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn alloc_produces_detached_node() {
        let raw = Node::alloc(7_u32);
        // SAFETY: freshly allocated by `alloc`, exclusively owned here.
        let node = unsafe { &*raw };
        assert!(node.next.load(Ordering::Relaxed).is_null());
        assert_eq!(node.data, 7);
        // SAFETY: reclaim the test allocation exactly once.
        unsafe { drop(Box::from_raw(raw)) };
    }
}
