//! Guard-scoped iteration.

use std::marker::PhantomData;
use std::sync::atomic::Ordering;

use rp_rcu::RcuGuard;

use crate::node::Node;

/// An iterator over an [`crate::RpList`], valid for the lifetime of the
/// guard borrow it was created with.
pub struct Iter<'g, T> {
    cur: *const Node<T>,
    _guard: PhantomData<&'g RcuGuard<'g>>,
}

impl<'g, T> Iter<'g, T> {
    pub(crate) fn new(head: *const Node<T>, _guard: &'g RcuGuard<'_>) -> Self {
        Iter {
            cur: head,
            _guard: PhantomData,
        }
    }
}

impl<'g, T: 'g> Iterator for Iter<'g, T> {
    type Item = &'g T;

    fn next(&mut self) -> Option<&'g T> {
        if self.cur.is_null() {
            return None;
        }
        // SAFETY: `cur` was reached from a published head/next pointer while
        // the read-side critical section (the guard this iterator borrows)
        // is open, so the node cannot have been freed: writers retire nodes
        // only after a grace period that cannot complete while the guard is
        // alive. The payload is immutable after publication.
        let node = unsafe { &*self.cur };
        self.cur = node.next.load(Ordering::Acquire);
        Some(&node.data)
    }
}

impl<T> std::fmt::Debug for Iter<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rp_list::Iter({:p})", self.cur)
    }
}

#[cfg(test)]
mod tests {
    use crate::RpList;
    use rp_rcu::pin;

    #[test]
    fn iterator_is_fused_at_end() {
        let list: RpList<u8> = RpList::new();
        list.push_front(1);
        let guard = pin();
        let mut it = list.iter(&guard);
        assert_eq!(it.next(), Some(&1));
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn multiple_iterators_under_one_guard() {
        let list: RpList<u8> = RpList::new();
        for i in 0..4 {
            list.push_front(i);
        }
        let guard = pin();
        let a: Vec<u8> = list.iter(&guard).copied().collect();
        let b: Vec<u8> = list.iter(&guard).copied().collect();
        assert_eq!(a, b);
    }
}
