//! A relativistic (RCU-protected) singly linked list.
//!
//! This is the building block the paper's hash table is constructed from:
//! an open chain whose readers traverse `next` pointers with no locks, no
//! retries and no atomic read-modify-write instructions, while writers
//! mutate the chain using *publication* (release-ordered pointer stores) and
//! *wait-for-readers* (grace periods) so that every intermediate state a
//! reader can observe is consistent.
//!
//! * **Insertion** initialises the new node's `next` pointer first and then
//!   publishes the node with a single release store; readers either see the
//!   node (fully initialised) or don't see it yet.
//! * **Removal** unlinks the node with a single pointer store — readers that
//!   already hold a reference keep a valid view — and frees the node only
//!   after a grace period.
//!
//! # Example
//!
//! ```
//! use rp_list::RpList;
//! use rp_rcu::pin;
//!
//! let list: RpList<u32> = RpList::new();
//! list.push_front(3);
//! list.push_front(2);
//! list.push_front(1);
//!
//! let guard = pin();
//! let values: Vec<u32> = list.iter(&guard).copied().collect();
//! assert_eq!(values, [1, 2, 3]);
//!
//! assert!(list.remove_first(|v| *v == 2));
//! let values: Vec<u32> = list.iter(&guard).copied().collect();
//! assert_eq!(values, [1, 3]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod iter;
mod list;
mod node;

pub use iter::Iter;
pub use list::RpList;
