//! The relativistic list itself.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

use rp_rcu::{RcuDomain, RcuGuard};

use crate::iter::Iter;
use crate::node::Node;

/// A concurrent singly linked list with relativistic (RCU) readers.
///
/// Readers traverse the list under an [`RcuGuard`] without any locking;
/// writers serialise on an internal mutex and retire unlinked nodes through
/// the global RCU domain, so reclaimed memory is never freed while a reader
/// might still reference it.
///
/// The element type must be `Send + Sync` (it is shared with readers and
/// reclaimed on arbitrary threads) and `'static` (nodes are retired through
/// a type-erased deferred-free queue).
pub struct RpList<T> {
    head: AtomicPtr<Node<T>>,
    len: AtomicUsize,
    writer: Mutex<()>,
}

// SAFETY: the list hands `&T` to concurrent readers and moves nodes between
// threads during reclamation; `T: Send + Sync` makes both sound. The raw
// pointers are managed exclusively by the list (publication / retire
// protocol), mirroring how standard collections encapsulate raw pointers.
unsafe impl<T: Send + Sync> Send for RpList<T> {}
// SAFETY: see above.
unsafe impl<T: Send + Sync> Sync for RpList<T> {}

impl<T: Send + Sync + 'static> RpList<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        RpList {
            head: AtomicPtr::new(std::ptr::null_mut()),
            len: AtomicUsize::new(0),
            writer: Mutex::new(()),
        }
    }

    /// Number of elements currently in the list.
    ///
    /// The value is a snapshot; concurrent writers may change it immediately.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Returns `true` if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `value` at the front of the list.
    pub fn push_front(&self, value: T) {
        let _w = self.writer.lock().unwrap();
        let node = Node::alloc(value);
        let head = self.head.load(Ordering::Relaxed);
        // Initialise before publication: readers that observe the new head
        // must also observe its `next` pointer and payload.
        // SAFETY: `node` is freshly allocated and not yet published, so we
        // have exclusive access to it.
        unsafe { (*node).next.store(head, Ordering::Relaxed) };
        // Publish (rcu_assign_pointer).
        self.head.store(node, Ordering::Release);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Inserts `value` immediately after the first element matching `pred`,
    /// or at the front if none matches. Returns `true` if it was inserted
    /// after a match.
    pub fn insert_after<F>(&self, value: T, mut pred: F) -> bool
    where
        F: FnMut(&T) -> bool,
    {
        let _w = self.writer.lock().unwrap();
        // Writer-side traversal: the writer lock excludes other writers, so
        // plain acquire loads give a stable view of the chain.
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: `cur` is reachable from the list and cannot be freed
            // while we hold the writer lock (only writers retire nodes, and
            // retirement happens under this same lock).
            let cur_ref = unsafe { &*cur };
            if pred(&cur_ref.data) {
                let node = Node::alloc(value);
                let next = cur_ref.next.load(Ordering::Acquire);
                // SAFETY: freshly allocated, unpublished.
                unsafe { (*node).next.store(next, Ordering::Relaxed) };
                cur_ref.next.store(node, Ordering::Release);
                self.len.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            cur = cur_ref.next.load(Ordering::Acquire);
        }
        drop(_w);
        self.push_front(value);
        false
    }

    /// Removes the first element matching `pred`. Returns `true` if an
    /// element was removed.
    ///
    /// The removed node is retired through the global RCU domain and freed
    /// after a subsequent grace period.
    pub fn remove_first<F>(&self, mut pred: F) -> bool
    where
        F: FnMut(&T) -> bool,
    {
        let _w = self.writer.lock().unwrap();
        let mut prev: Option<&Node<T>> = None;
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: reachable node, protected from reclamation by the
            // writer lock (see `insert_after`).
            let cur_ref = unsafe { &*cur };
            if pred(&cur_ref.data) {
                let next = cur_ref.next.load(Ordering::Acquire);
                match prev {
                    Some(p) => p.next.store(next, Ordering::Release),
                    None => self.head.store(next, Ordering::Release),
                }
                self.len.fetch_sub(1, Ordering::Relaxed);
                // SAFETY: `cur` is now unreachable to new readers (it has
                // been unlinked while holding the writer lock) and was
                // allocated by `Node::alloc` (Box). Readers of this list pin
                // the global domain, so deferring the free there is correct.
                unsafe { RcuDomain::global().defer_free(cur) };
                return true;
            }
            prev = Some(cur_ref);
            cur = cur_ref.next.load(Ordering::Acquire);
        }
        false
    }

    /// Removes every element matching `pred`, returning how many were
    /// removed.
    pub fn remove_all<F>(&self, mut pred: F) -> usize
    where
        F: FnMut(&T) -> bool,
    {
        let _w = self.writer.lock().unwrap();
        let mut removed = 0;
        let mut prev: Option<&Node<T>> = None;
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: as in `remove_first`.
            let cur_ref = unsafe { &*cur };
            let next = cur_ref.next.load(Ordering::Acquire);
            if pred(&cur_ref.data) {
                match prev {
                    Some(p) => p.next.store(next, Ordering::Release),
                    None => self.head.store(next, Ordering::Release),
                }
                self.len.fetch_sub(1, Ordering::Relaxed);
                // SAFETY: as in `remove_first`.
                unsafe { RcuDomain::global().defer_free(cur) };
                removed += 1;
                // `prev` stays where it is: the node after `cur` is now its
                // successor.
            } else {
                prev = Some(cur_ref);
            }
            cur = next;
        }
        removed
    }

    /// Returns a reference to the first element matching `pred`, valid for
    /// the lifetime of the guard borrow.
    pub fn find<'g, F>(&'g self, guard: &'g RcuGuard<'_>, mut pred: F) -> Option<&'g T>
    where
        F: FnMut(&T) -> bool,
    {
        self.iter(guard).find(|v| pred(v))
    }

    /// Returns `true` if any element matches `pred`.
    pub fn contains<F>(&self, pred: F) -> bool
    where
        F: FnMut(&T) -> bool,
    {
        let guard = rp_rcu::pin();
        self.iter(&guard).any(pred)
    }

    /// Iterates over the list under `guard`.
    ///
    /// The iterator observes a consistent chain: every element present for
    /// the whole traversal is observed; elements inserted or removed
    /// concurrently may or may not be.
    pub fn iter<'g>(&'g self, guard: &'g RcuGuard<'_>) -> Iter<'g, T> {
        Iter::new(self.head.load(Ordering::Acquire), guard)
    }

    /// Removes all elements.
    pub fn clear(&self) {
        self.remove_all(|_| true);
    }
}

impl<T: Send + Sync + 'static> Default for RpList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for RpList<T> {
    fn drop(&mut self) {
        // Exclusive access: no readers or writers can exist. Free the chain
        // directly without grace periods.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access; every node was allocated by
            // `Node::alloc` and is freed exactly once here (nodes already
            // retired were unlinked first and are not reachable from head).
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next.load(Ordering::Relaxed);
        }
    }
}

impl<T: Send + Sync + 'static + std::fmt::Debug> std::fmt::Debug for RpList<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let guard = rp_rcu::pin();
        f.debug_list().entries(self.iter(&guard)).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_rcu::pin;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;

    fn collect(list: &RpList<u32>) -> Vec<u32> {
        let guard = pin();
        list.iter(&guard).copied().collect()
    }

    #[test]
    fn new_list_is_empty() {
        let list: RpList<u32> = RpList::new();
        assert!(list.is_empty());
        assert_eq!(list.len(), 0);
        assert_eq!(collect(&list), Vec::<u32>::new());
    }

    #[test]
    fn push_front_orders_lifo() {
        let list = RpList::new();
        for i in 0..5 {
            list.push_front(i);
        }
        assert_eq!(collect(&list), [4, 3, 2, 1, 0]);
        assert_eq!(list.len(), 5);
    }

    #[test]
    fn insert_after_places_element_correctly() {
        let list = RpList::new();
        list.push_front(3);
        list.push_front(1);
        assert!(list.insert_after(2, |v| *v == 1));
        assert_eq!(collect(&list), [1, 2, 3]);
        // No match: falls back to push_front.
        assert!(!list.insert_after(0, |v| *v == 99));
        assert_eq!(collect(&list), [0, 1, 2, 3]);
    }

    #[test]
    fn remove_first_unlinks_single_match() {
        let list = RpList::new();
        for i in (0..5).rev() {
            list.push_front(i);
        }
        assert!(list.remove_first(|v| *v == 2));
        assert_eq!(collect(&list), [0, 1, 3, 4]);
        assert!(!list.remove_first(|v| *v == 2));
        assert_eq!(list.len(), 4);
    }

    #[test]
    fn remove_all_and_clear() {
        let list = RpList::new();
        for i in 0..10 {
            list.push_front(i);
        }
        let removed = list.remove_all(|v| v % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(collect(&list), [9, 7, 5, 3, 1]);
        list.clear();
        assert!(list.is_empty());
    }

    #[test]
    fn find_and_contains() {
        let list = RpList::new();
        list.push_front(10);
        list.push_front(20);
        let guard = pin();
        assert_eq!(list.find(&guard, |v| *v > 15).copied(), Some(20));
        assert!(list.contains(|v| *v == 10));
        assert!(!list.contains(|v| *v == 11));
    }

    #[test]
    fn reader_holds_reference_across_removal() {
        // The core RCU guarantee: a reference obtained under a guard stays
        // valid even after the element is removed, until the guard is
        // dropped.
        let list = RpList::new();
        list.push_front(String::from("stale"));
        let guard = pin();
        let r = list.find(&guard, |_| true).unwrap();
        assert!(list.remove_first(|_| true));
        // The node has been retired but cannot be freed while `guard` lives.
        assert_eq!(r, "stale");
        drop(guard);
        RcuDomain::global().synchronize_and_reclaim();
    }

    #[test]
    fn concurrent_readers_and_writer_stress() {
        let list = Arc::new(RpList::new());
        let stop = Arc::new(AtomicBool::new(false));

        // Sentinel values that are always present.
        for i in 0..8_u32 {
            list.push_front(i * 1000);
        }

        let readers: Vec<_> = (0..3)
            .map(|_| {
                let list = Arc::clone(&list);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut iterations = 0_u64;
                    while !stop.load(Ordering::Relaxed) {
                        let guard = pin();
                        let mut sentinels = 0;
                        for v in list.iter(&guard) {
                            if v % 1000 == 0 {
                                sentinels += 1;
                            }
                        }
                        // All 8 sentinels must always be observed: the
                        // writer only churns non-sentinel values.
                        assert_eq!(sentinels, 8, "reader missed a stable element");
                        iterations += 1;
                    }
                    iterations
                })
            })
            .collect();

        let writer = {
            let list = Arc::clone(&list);
            thread::spawn(move || {
                for round in 0..200_u32 {
                    for i in 1..20 {
                        list.push_front(round * 100 + i);
                    }
                    let removed = list.remove_all(|v| v % 1000 != 0);
                    assert!(removed >= 19);
                    if round % 16 == 0 {
                        RcuDomain::global().synchronize_and_reclaim();
                    }
                }
            })
        };

        writer.join().unwrap();
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        RcuDomain::global().synchronize_and_reclaim();
    }
}
