//! Property tests for the QSBR domain's grace-period protocol, checked
//! against a reference counter model.
//!
//! The model is the protocol's paper description: each registered handle is
//! either *offline* or *online at some generation*; a `synchronize` that
//! begins now completes exactly when every handle is offline, unregistered,
//! or has announced a quiescent state **after** the call began. Two
//! properties follow, and both are tested against random op interleavings:
//!
//! * **Never early:** while any handle the model calls *blocking* (alive
//!   and online at the moment the grace period starts) has not yet
//!   announced or gone offline, `synchronize` must not return.
//! * **Never stuck:** once every alive handle is offline, `synchronize`
//!   must return — regardless of the op history that led there
//!   (re-registrations, online/offline flapping, drops mid-wait).
//!
//! Handles are `!Send`, so each generated case runs its op sequence on a
//! dedicated actor thread while the main thread drives `synchronize`
//! concurrently from another.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rp_rcu::qsbr::QsbrDomain;

/// One operation applied to the actor thread's set of handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Quiescent(usize),
    Offline(usize),
    Online(usize),
    /// Drop the handle (deregistration). Ops addressing a dropped slot are
    /// skipped, matching the model.
    Unregister(usize),
    /// Register a fresh handle into the slot (if empty).
    Register(usize),
}

const SLOTS: usize = 3;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0_usize..SLOTS).prop_map(Op::Quiescent),
        2 => (0_usize..SLOTS).prop_map(Op::Offline),
        2 => (0_usize..SLOTS).prop_map(Op::Online),
        1 => (0_usize..SLOTS).prop_map(Op::Unregister),
        1 => (0_usize..SLOTS).prop_map(Op::Register),
    ]
}

/// The reference model: per-slot, is a handle alive and is it online.
/// (Generations collapse to "online": any online handle blocks a *new*
/// grace period until its next announcement, because the grace period
/// advances the target past every previously announced value.)
#[derive(Clone)]
struct Model {
    alive: [bool; SLOTS],
    online: [bool; SLOTS],
}

impl Model {
    fn initial() -> Model {
        Model {
            alive: [true; SLOTS],
            online: [true; SLOTS],
        }
    }

    fn apply(&mut self, op: Op) {
        match op {
            Op::Quiescent(i) | Op::Online(i) => {
                if self.alive[i] {
                    self.online[i] = true;
                }
            }
            Op::Offline(i) => {
                if self.alive[i] {
                    self.online[i] = false;
                }
            }
            Op::Unregister(i) => {
                self.alive[i] = false;
                self.online[i] = false;
            }
            Op::Register(i) => {
                if !self.alive[i] {
                    self.alive[i] = true;
                    self.online[i] = true; // registration starts online
                }
            }
        }
    }

    fn any_online(&self) -> bool {
        (0..SLOTS).any(|i| self.alive[i] && self.online[i])
    }
}

/// Runs `ops` on an actor thread (handles live there), then checks a
/// `synchronize` started against the resulting state completes exactly when
/// the model says it may: blocked while any handle is online, released once
/// the actor offlines everything.
fn check_case(ops: &[Op]) -> Result<(), TestCaseError> {
    let domain = QsbrDomain::new();
    let mut model = Model::initial();

    let (op_tx, op_rx) = mpsc::channel::<Option<Op>>();
    let (ack_tx, ack_rx) = mpsc::channel::<()>();
    let actor = {
        let domain = Arc::clone(&domain);
        std::thread::spawn(move || {
            let mut handles: Vec<Option<_>> = (0..SLOTS).map(|_| Some(domain.register())).collect();
            while let Ok(msg) = op_rx.recv() {
                match msg {
                    Some(op) => {
                        match op {
                            Op::Quiescent(i) => {
                                if let Some(h) = handles[i].as_ref() {
                                    h.quiescent_state();
                                }
                            }
                            Op::Offline(i) => {
                                if let Some(h) = handles[i].as_ref() {
                                    h.offline();
                                }
                            }
                            Op::Online(i) => {
                                if let Some(h) = handles[i].as_ref() {
                                    h.online();
                                }
                            }
                            Op::Unregister(i) => {
                                handles[i] = None;
                            }
                            Op::Register(i) => {
                                if handles[i].is_none() {
                                    handles[i] = Some(domain.register());
                                }
                            }
                        }
                        ack_tx.send(()).unwrap();
                    }
                    None => {
                        // Release phase: everything still alive goes
                        // offline, which must unblock any waiter.
                        for h in handles.iter().flatten() {
                            h.offline();
                        }
                        ack_tx.send(()).unwrap();
                    }
                }
            }
        })
    };

    // Phase 1: apply the random prefix, mirrored in the model.
    for &op in ops {
        op_tx.send(Some(op)).unwrap();
        ack_rx.recv().unwrap();
        model.apply(op);
    }

    // Phase 2: start a synchronize against the settled state.
    let done = Arc::new(AtomicBool::new(false));
    let waiter = {
        let domain = Arc::clone(&domain);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            domain.synchronize();
            done.store(true, Ordering::SeqCst);
        })
    };

    if model.any_online() {
        // Never early: the model says at least one reader blocks this
        // grace period, so it must still be pending after a real delay.
        std::thread::sleep(Duration::from_millis(15));
        prop_assert!(
            !done.load(Ordering::SeqCst),
            "synchronize returned early: model says {:?}/{:?} blocks it",
            model.alive,
            model.online
        );
    }

    // Phase 3 (release): the actor offlines everything alive; the model now
    // allows completion, so the waiter must finish promptly.
    op_tx.send(None).unwrap();
    ack_rx.recv().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !done.load(Ordering::SeqCst) {
        prop_assert!(
            Instant::now() < deadline,
            "synchronize deadlocked after every handle went offline \
             (alive {:?}, online-before-release {:?})",
            model.alive,
            model.online
        );
        std::thread::yield_now();
    }

    drop(op_tx);
    actor.join().unwrap();
    waiter.join().unwrap();
    prop_assert_eq!(domain.stats().grace_periods, 1);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random op interleavings against a concurrent `synchronize`: never
    /// early (model-checked), never deadlocked.
    #[test]
    fn synchronize_agrees_with_the_counter_model(
        ops in proptest::collection::vec(op_strategy(), 0..24)
    ) {
        check_case(&ops)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Ops racing a free-running synchronize loop: no interleaving may
    /// deadlock once the actor goes offline, and every completed grace
    /// period is counted.
    #[test]
    fn racing_synchronize_never_deadlocks(
        ops in proptest::collection::vec(op_strategy(), 1..48)
    ) {
        let domain = QsbrDomain::new();
        let stop = Arc::new(AtomicBool::new(false));
        let syncer = {
            let domain = Arc::clone(&domain);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut completed = 0_u64;
                while !stop.load(Ordering::Relaxed) {
                    domain.synchronize();
                    completed += 1;
                }
                completed
            })
        };

        let actor = {
            let domain = Arc::clone(&domain);
            let ops = ops.clone();
            std::thread::spawn(move || {
                let mut handles: Vec<Option<_>> =
                    (0..SLOTS).map(|_| Some(domain.register())).collect();
                for op in ops {
                    match op {
                        Op::Quiescent(i) => {
                            if let Some(h) = handles[i].as_ref() {
                                h.quiescent_state();
                            }
                        }
                        Op::Offline(i) => {
                            if let Some(h) = handles[i].as_ref() {
                                h.offline();
                            }
                        }
                        Op::Online(i) => {
                            if let Some(h) = handles[i].as_ref() {
                                h.online();
                            }
                        }
                        Op::Unregister(i) => handles[i] = None,
                        Op::Register(i) => {
                            if handles[i].is_none() {
                                handles[i] = Some(domain.register());
                            }
                        }
                    }
                }
                // Handles drop here (Drop goes offline first), so the
                // syncer can always finish its in-flight grace period.
            })
        };

        actor.join().unwrap();
        stop.store(true, Ordering::SeqCst);
        let completed = syncer.join().unwrap();
        prop_assert_eq!(domain.stats().grace_periods, completed);
    }
}
