//! Induced grace-period stalls, end to end: a deliberately uncooperative
//! reader of each flavor must be detected within 2× the configured
//! threshold, attributed to the correct flavor in the trace ring, and
//! counted in `rcu_grace_stalls_total`; with panic-on-stall configured the
//! detector converts the hang into a named failure.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rp_rcu::qsbr::QsbrDomain;
use rp_rcu::stall::{spawn_watchdog, StallConfig, StallDetector, StallFlavor};
use rp_rcu::GraceSync;

/// These tests share the global domains, detector, and telemetry; run the
/// scenarios one at a time.
static SERIAL: Mutex<()> = Mutex::new(());

fn stall_trace_count(label: &str) -> usize {
    let mut out = Vec::new();
    rp_obs::global().render_trace(&mut out);
    String::from_utf8(out)
        .unwrap()
        .matches(&format!(" {label} "))
        .count()
}

/// Runs one induced-stall scenario: `misbehave` starts a reader that
/// refuses to cooperate until the release flag is set; a waiter then
/// enters `GraceSync::synchronize` and a watchdog with `threshold` must
/// flag the stall within 2× the threshold, with the flavor-specific trace
/// label appearing in the ring.
fn induced_stall(
    threshold: Duration,
    label: &str,
    misbehave: impl FnOnce(Arc<AtomicBool>, Arc<AtomicBool>) -> thread::JoinHandle<()>,
) {
    let obs = rp_obs::global();
    let stalls_before = obs.rcu.grace_stalls_total.get();
    let traces_before = stall_trace_count(label);

    let watchdog = spawn_watchdog(StallConfig {
        threshold,
        panic_on_stall: false,
    });

    let ready = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let reader = misbehave(Arc::clone(&ready), Arc::clone(&release));
    while !ready.load(Ordering::SeqCst) {
        thread::yield_now();
    }

    let start = Instant::now();
    let waiter = thread::spawn(|| GraceSync::global().synchronize());

    // The stall must be flagged within 2x the configured threshold.
    let deadline = start + 2 * threshold;
    while obs.rcu.grace_stalls_total.get() == stalls_before {
        assert!(
            Instant::now() < deadline,
            "stall not detected within 2x threshold ({threshold:?})"
        );
        thread::sleep(Duration::from_millis(5));
    }
    let detected_in = start.elapsed();
    assert!(
        detected_in <= 2 * threshold,
        "detection took {detected_in:?}, over 2x the {threshold:?} threshold"
    );
    assert!(
        stall_trace_count(label) > traces_before,
        "no {label} trace event recorded"
    );

    release.store(true, Ordering::SeqCst);
    reader.join().unwrap();
    waiter.join().unwrap();
    watchdog.stop().expect("watchdog exits cleanly");
}

#[test]
fn parked_online_qsbr_reader_trips_a_qsbr_stall() {
    let _serial = SERIAL.lock();
    induced_stall(
        Duration::from_millis(400),
        "grace_stall_qsbr",
        |ready, release| {
            thread::Builder::new()
                .name("parked-qsbr-reader".into())
                .spawn(move || {
                    // Online, never announces quiescence: the QSBR grace
                    // period cannot end until we are released.
                    let h = QsbrDomain::global().register();
                    ready.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        thread::sleep(Duration::from_millis(5));
                    }
                    h.quiescent_state();
                    drop(h);
                })
                .unwrap()
        },
    );
}

#[test]
fn held_ebr_guard_trips_an_ebr_stall() {
    let _serial = SERIAL.lock();
    induced_stall(
        Duration::from_millis(400),
        "grace_stall_ebr",
        |ready, release| {
            thread::Builder::new()
                .name("held-ebr-guard".into())
                .spawn(move || {
                    // A read-side critical section held across the phase
                    // flip: the EBR grace period waits on us.
                    let guard = rp_rcu::pin();
                    ready.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        thread::sleep(Duration::from_millis(5));
                    }
                    drop(guard);
                })
                .unwrap()
        },
    );
}

#[test]
fn panic_on_stall_converts_the_hang_into_a_named_failure() {
    // Serialized too: flagging bumps the global counter and trace ring,
    // which the induced-stall scenarios read.
    let _serial = SERIAL.lock();
    // Isolated detector: the panic must not poison the shared slots.
    let detector = Arc::new(StallDetector::new());
    let stamp = detector.stamp_begin(StallFlavor::Qsbr).expect("a slot");
    thread::sleep(Duration::from_millis(30));
    let checker = {
        let detector = Arc::clone(&detector);
        thread::spawn(move || {
            detector.check_now(&StallConfig {
                threshold: Duration::from_millis(10),
                panic_on_stall: true,
            })
        })
    };
    let err = checker.join().expect_err("check_now must panic");
    let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        message.contains("grace-period stall") && message.contains("qsbr"),
        "panic message must name the stall and flavor: {message:?}"
    );
    drop(stamp);
}
