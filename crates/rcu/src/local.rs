//! Per-thread reader registration.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam_utils::CachePadded;

use crate::domain::{RcuDomain, ReaderState};
use crate::guard::RcuGuard;
use crate::NEST_MASK;

/// A thread's registration with an [`RcuDomain`].
///
/// Creating a `LocalHandle` registers the calling thread as a reader of the
/// domain; dropping it unregisters the thread. Read-side critical sections
/// are entered with [`LocalHandle::read_lock`].
///
/// For the global domain, [`pin`] manages a thread-local handle
/// automatically; explicit handles are only needed for custom domains.
pub struct LocalHandle {
    domain: Arc<RcuDomain>,
    state: Arc<CachePadded<ReaderState>>,
}

impl LocalHandle {
    /// Registers the calling thread with `domain`.
    pub fn new(domain: &Arc<RcuDomain>) -> Self {
        LocalHandle {
            domain: Arc::clone(domain),
            state: domain.register_reader(),
        }
    }

    /// Enters a read-side critical section.
    pub fn read_lock(&self) -> RcuGuard<'_> {
        RcuGuard::enter(&self.state, self.domain.gp_ctr_relaxed())
    }

    /// The domain this handle is registered with.
    pub fn domain(&self) -> &Arc<RcuDomain> {
        &self.domain
    }

    /// Returns `true` if the owning thread is currently inside a read-side
    /// critical section entered through this handle.
    pub fn in_critical_section(&self) -> bool {
        self.state.ctr.load(Ordering::Relaxed) & NEST_MASK != 0
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        if self.in_critical_section() {
            // A guard created from this handle is still alive (this can only
            // happen through unusual TLS-destructor interleavings). The
            // reader record must stay both allocated and registered so that
            // (a) the outstanding guard's counter accesses remain valid and
            // (b) writers keep waiting for the still-open critical section.
            // Leak one reference to keep it alive forever.
            std::mem::forget(Arc::clone(&self.state));
            return;
        }
        self.domain.unregister_reader(&self.state);
    }
}

impl std::fmt::Debug for LocalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalHandle")
            .field("in_critical_section", &self.in_critical_section())
            .finish()
    }
}

std::thread_local! {
    /// The calling thread's registration with the global domain, created
    /// lazily on first use of [`pin`].
    static GLOBAL_HANDLE: LocalHandle = LocalHandle::new(RcuDomain::global());

    /// Grace periods this thread has waited for (see
    /// [`thread_synchronize_count`]).
    static SYNCHRONIZE_CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Records that the calling thread performed a `synchronize` (called by
/// [`RcuDomain::synchronize`]).
pub(crate) fn note_synchronize() {
    let _ = SYNCHRONIZE_CALLS.try_with(|c| c.set(c.get() + 1));
}

/// Number of grace periods the *calling thread* has waited for (via
/// [`RcuDomain::synchronize`] on any domain, including the waits inside
/// `synchronize_and_reclaim`) since the thread started.
///
/// This is the observable side of the "writers never wait for readers"
/// property that background resize maintenance provides: a writer thread on
/// the maintained path can snapshot this counter, perform its updates, and
/// assert the counter did not move — every grace period was absorbed by the
/// maintenance thread instead. The counter is thread-local, so readings are
/// exact and race-free.
pub fn thread_synchronize_count() -> u64 {
    SYNCHRONIZE_CALLS.try_with(|c| c.get()).unwrap_or(0)
}

/// Enters a read-side critical section of the global domain.
///
/// The calling thread is registered with [`RcuDomain::global`] on first use.
/// The returned guard keeps the critical section open until it is dropped;
/// nesting is allowed and cheap.
///
/// # Panics
///
/// Panics if called while the thread's local storage is being destroyed
/// (i.e. from another thread-local's destructor after the handle has been
/// torn down).
pub fn pin() -> RcuGuard<'static> {
    GLOBAL_HANDLE.with(|handle| {
        let guard = handle.read_lock();
        // SAFETY: extending the guard's lifetime to `'static` is sound
        // because (a) the guard is `!Send`, so it stays on this thread, and
        // (b) the thread-local `LocalHandle` outlives any guard created on
        // this thread: it is destroyed only at thread exit, and if a guard
        // is somehow still active at that point the handle leaks its reader
        // record rather than freeing it (see `LocalHandle::drop`).
        unsafe { std::mem::transmute::<RcuGuard<'_>, RcuGuard<'static>>(guard) }
    })
}

/// Returns the calling thread's current read-side nesting depth in the
/// global domain (0 means "not in a read-side critical section").
///
/// Waiting for readers from inside a read-side critical section of the same
/// domain would self-deadlock; [`crate::RcuDomain::synchronize`] uses this to
/// turn that mistake into a panic, and data structures use it to postpone
/// optional grace-period work (reclamation, automatic resizing) when the
/// calling thread happens to hold a guard.
pub fn global_read_nesting() -> usize {
    GLOBAL_HANDLE
        .try_with(|handle| handle.state.ctr.load(Ordering::Relaxed) & NEST_MASK)
        .unwrap_or(0)
}

/// Runs `f` outside any read-side critical section and then issues a
/// quiescent hint.
///
/// This is a convenience for long-running reader loops of the global domain:
/// calling it periodically guarantees the thread is seen as quiescent even
/// if the surrounding code never fully drains its guards (it asserts that no
/// guard is active).
pub fn quiescent_with<R>(f: impl FnOnce() -> R) -> R {
    GLOBAL_HANDLE.with(|handle| {
        assert!(
            !handle.in_critical_section(),
            "quiescent_with called while a read-side critical section is active"
        );
        f()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn handle_registers_and_unregisters() {
        let domain = RcuDomain::new();
        assert_eq!(domain.registered_readers(), 0);
        {
            let _h = LocalHandle::new(&domain);
            assert_eq!(domain.registered_readers(), 1);
        }
        assert_eq!(domain.registered_readers(), 0);
    }

    #[test]
    fn read_lock_tracks_critical_section() {
        let domain = RcuDomain::new();
        let handle = LocalHandle::new(&domain);
        assert!(!handle.in_critical_section());
        {
            let _g = handle.read_lock();
            assert!(handle.in_critical_section());
        }
        assert!(!handle.in_critical_section());
    }

    #[test]
    fn pin_registers_thread_with_global_domain() {
        let before = RcuDomain::global().registered_readers();
        let t = thread::spawn(|| {
            let _g = pin();
            RcuDomain::global().registered_readers()
        });
        let during = t.join().unwrap();
        assert!(during >= 1);
        // After the spawned thread exits, its handle unregisters; the count
        // should not keep growing without bound.
        let after = RcuDomain::global().registered_readers();
        assert!(after <= during.max(before + 1));
    }

    #[test]
    fn quiescent_with_runs_closure() {
        let x = quiescent_with(|| 41 + 1);
        assert_eq!(x, 42);
    }

    #[test]
    #[should_panic(expected = "critical section is active")]
    fn quiescent_with_panics_inside_guard() {
        let _g = pin();
        quiescent_with(|| ());
    }

    #[test]
    fn thread_synchronize_count_tracks_waits() {
        thread::spawn(|| {
            assert_eq!(thread_synchronize_count(), 0);
            RcuDomain::global().synchronize();
            RcuDomain::global().synchronize_and_reclaim();
            assert_eq!(thread_synchronize_count(), 2);
            // Reads never bump the counter.
            let g = pin();
            drop(g);
            assert_eq!(thread_synchronize_count(), 2);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn many_threads_pin_concurrently() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                thread::spawn(|| {
                    for _ in 0..100 {
                        let g1 = pin();
                        let g2 = pin();
                        assert!(g2.nesting() >= 2);
                        drop(g2);
                        drop(g1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        RcuDomain::global().synchronize();
    }
}
