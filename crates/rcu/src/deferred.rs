//! Deferred work executed after a grace period (the `call_rcu` equivalent).

/// A unit of deferred reclamation work.
///
/// A `Deferred` is queued on an [`crate::RcuDomain`] and executed only after
/// a subsequent grace period, at which point no reader can still hold a
/// reference to the memory it reclaims.
pub struct Deferred {
    inner: Inner,
}

enum Inner {
    /// An arbitrary boxed closure.
    Closure(Box<dyn FnOnce() + Send>),
    /// A raw pointer plus its type-erased dropper (avoids double boxing for
    /// the common "free this node" case).
    Free {
        ptr: *mut (),
        dropper: unsafe fn(*mut ()),
    },
}

// SAFETY: the `Closure` variant is `Send` by construction. The `Free`
// variant is only constructed by `Deferred::free`, which requires `T: Send`,
// so dropping the pointee on another thread is sound; the raw pointer itself
// is just an address.
unsafe impl Send for Deferred {}

impl Deferred {
    /// Creates a deferred unit from a closure.
    pub fn new(f: impl FnOnce() + Send + 'static) -> Self {
        Deferred {
            inner: Inner::Closure(Box::new(f)),
        }
    }

    /// Creates a deferred unit that frees `ptr` as a [`Box<T>`].
    ///
    /// # Safety
    ///
    /// `ptr` must have been produced by [`Box::into_raw`] and must not be
    /// freed by any other path. The caller must guarantee the pointer is no
    /// longer reachable by *new* readers (it has been unpublished).
    pub unsafe fn free<T: Send>(ptr: *mut T) -> Self {
        unsafe fn drop_box<T>(ptr: *mut ()) {
            // SAFETY: `ptr` was produced by `Box::into_raw::<T>` in
            // `Deferred::free` and is dropped exactly once, per the caller
            // contract of `Deferred::free`.
            unsafe { drop(Box::from_raw(ptr.cast::<T>())) }
        }
        Deferred {
            inner: Inner::Free {
                ptr: ptr.cast(),
                dropper: drop_box::<T>,
            },
        }
    }

    /// Executes the deferred work, consuming it.
    pub(crate) fn call(self) {
        match self.inner {
            Inner::Closure(f) => f(),
            Inner::Free { ptr, dropper } => {
                // SAFETY: `dropper` was paired with `ptr` at construction
                // time and the grace-period machinery guarantees exclusive
                // access at this point.
                unsafe { dropper(ptr) }
            }
        }
    }
}

impl std::fmt::Debug for Deferred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Inner::Closure(_) => f.write_str("Deferred::Closure"),
            Inner::Free { ptr, .. } => write!(f, "Deferred::Free({ptr:p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn closure_runs_on_call() {
        let ran = Arc::new(AtomicBool::new(false));
        let d = Deferred::new({
            let ran = Arc::clone(&ran);
            move || ran.store(true, Ordering::SeqCst)
        });
        assert!(!ran.load(Ordering::SeqCst));
        d.call();
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn free_drops_the_box_exactly_once() {
        struct DropFlag(Arc<AtomicBool>);
        impl Drop for DropFlag {
            fn drop(&mut self) {
                assert!(
                    !self.0.swap(true, Ordering::SeqCst),
                    "value dropped more than once"
                );
            }
        }

        let dropped = Arc::new(AtomicBool::new(false));
        let raw = Box::into_raw(Box::new(DropFlag(Arc::clone(&dropped))));
        // SAFETY: `raw` comes from `Box::into_raw` and is never freed
        // elsewhere; there are no readers in this test.
        let d = unsafe { Deferred::free(raw) };
        assert!(!dropped.load(Ordering::SeqCst));
        d.call();
        assert!(dropped.load(Ordering::SeqCst));
    }

    #[test]
    fn debug_formatting_distinguishes_variants() {
        let c = Deferred::new(|| {});
        assert!(format!("{c:?}").contains("Closure"));
        let raw = Box::into_raw(Box::new(0_u8));
        // SAFETY: freshly allocated, freed exactly once by `call` below.
        let f = unsafe { Deferred::free(raw) };
        assert!(format!("{f:?}").contains("Free"));
        f.call();
        c.call();
    }
}
