//! Read-side critical-section guards (delimited readers).

use std::marker::PhantomData;
use std::sync::atomic::Ordering;

use crossbeam_utils::CachePadded;

use crate::domain::ReaderState;
use crate::{GP_COUNT, NEST_MASK};

/// A read-side critical section.
///
/// While an `RcuGuard` is alive, grace periods of its domain cannot
/// complete, so any pointer published before the guard was created — and any
/// pointer observed through it — remains valid until the guard is dropped.
///
/// Guards are re-entrant: nesting them on the same thread is cheap and the
/// outermost guard defines the critical section observed by writers. Guards
/// are neither `Send` nor `Sync`; they delimit a section of a *thread's*
/// execution.
///
/// Entering and leaving a critical section costs one store to a
/// thread-private counter plus one full memory fence — there are no locks,
/// no waiting and no atomic read-modify-write instructions, which is what
/// gives relativistic readers their linear scalability.
pub struct RcuGuard<'scope> {
    state: *const CachePadded<ReaderState>,
    /// `!Send + !Sync`: the guard manipulates a thread-private counter.
    _not_send: PhantomData<*mut ()>,
    _scope: PhantomData<&'scope ()>,
}

impl<'scope> RcuGuard<'scope> {
    /// Enters a (possibly nested) read-side critical section for `state`.
    ///
    /// `gp_ctr` is the domain's current grace-period counter value.
    pub(crate) fn enter(state: &'scope CachePadded<ReaderState>, gp_ctr: usize) -> Self {
        let cur = state.ctr.load(Ordering::Relaxed);
        if cur & NEST_MASK == 0 {
            // Outermost critical section: snapshot the domain phase (which
            // has the nesting seed folded in, taking us to a nest count of
            // one) and fence so the snapshot store is ordered before every
            // read performed inside the critical section.
            state.ctr.store(gp_ctr, Ordering::SeqCst);
            std::sync::atomic::fence(Ordering::SeqCst);
        } else {
            // Nested: only the thread itself reads the intermediate values,
            // so relaxed ordering suffices.
            state.ctr.store(cur + GP_COUNT, Ordering::Relaxed);
        }
        RcuGuard {
            state,
            _not_send: PhantomData,
            _scope: PhantomData,
        }
    }

    /// Creates a guard that performs no reader registration at all.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no writer can concurrently retire or
    /// free any object this guard will be used to access — typically because
    /// the caller has exclusive (`&mut`/owned) access to the data structure,
    /// e.g. inside `Drop`.
    pub unsafe fn unprotected() -> RcuGuard<'static> {
        RcuGuard {
            state: std::ptr::null(),
            _not_send: PhantomData,
            _scope: PhantomData,
        }
    }

    /// Returns `true` if this guard was created with
    /// [`RcuGuard::unprotected`].
    pub fn is_unprotected(&self) -> bool {
        self.state.is_null()
    }

    /// Current nesting depth of the owning thread's critical section, for
    /// diagnostics and tests.
    pub fn nesting(&self) -> usize {
        if self.state.is_null() {
            return 0;
        }
        // SAFETY: `state` points to the creating thread's `ReaderState`,
        // which outlives the guard (see `LocalHandle`'s leak-on-active-guard
        // policy), and the guard is not `Send`, so we are on that thread.
        let state = unsafe { &*self.state };
        state.ctr.load(Ordering::Relaxed) & NEST_MASK
    }
}

impl Drop for RcuGuard<'_> {
    fn drop(&mut self) {
        if self.state.is_null() {
            return;
        }
        // SAFETY: as in `nesting` — the pointee outlives the guard and is
        // only mutated by the owning thread.
        let state = unsafe { &*self.state };
        let cur = state.ctr.load(Ordering::Relaxed);
        debug_assert!(cur & NEST_MASK >= GP_COUNT, "unbalanced RcuGuard drop");
        if cur & NEST_MASK == GP_COUNT {
            // Leaving the outermost critical section: fence so every read
            // performed inside it is ordered before the counter store that
            // lets grace periods complete.
            std::sync::atomic::fence(Ordering::SeqCst);
            state.ctr.store(cur - GP_COUNT, Ordering::SeqCst);
        } else {
            state.ctr.store(cur - GP_COUNT, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for RcuGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcuGuard")
            .field("unprotected", &self.is_unprotected())
            .field("nesting", &self.nesting())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pin, LocalHandle, RcuDomain};

    #[test]
    fn nesting_depth_tracks_guard_stack() {
        let domain = RcuDomain::new();
        let handle = LocalHandle::new(&domain);
        let g1 = handle.read_lock();
        assert_eq!(g1.nesting(), 1);
        {
            let g2 = handle.read_lock();
            assert_eq!(g2.nesting(), 2);
            let g3 = handle.read_lock();
            assert_eq!(g3.nesting(), 3);
        }
        assert_eq!(g1.nesting(), 1);
    }

    #[test]
    fn unprotected_guard_reports_itself() {
        // SAFETY: nothing is accessed through the guard in this test.
        let g = unsafe { RcuGuard::unprotected() };
        assert!(g.is_unprotected());
        assert_eq!(g.nesting(), 0);
    }

    #[test]
    fn global_pin_is_not_unprotected() {
        let g = pin();
        assert!(!g.is_unprotected());
        assert!(g.nesting() >= 1);
    }

    #[test]
    fn debug_output_mentions_nesting() {
        let g = pin();
        let s = format!("{g:?}");
        assert!(s.contains("nesting"));
    }
}
