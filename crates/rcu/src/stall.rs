//! A grace-period stall detector, in the spirit of the kernel's RCU CPU
//! stall warnings.
//!
//! The paper's wait-free-reader guarantee has a writer-side dual: a grace
//! period only ends when every reader cooperates (EBR readers by leaving
//! their critical sections, QSBR readers by announcing quiescence or going
//! offline). A reader that stops cooperating turns every
//! [`crate::GraceSync::synchronize`] into a silent hang — the hardest class
//! of bug to attribute in a relativistic system. This module makes such
//! hangs *observable and attributable*:
//!
//! * Every flavor wait inside the funnel stamps its begin time into one of
//!   a fixed set of shared [`detector`] slots (allocation-free, RAII-cleared
//!   when the wait completes).
//! * [`StallDetector::check_now`] — driven from the `rp-maint` heartbeat and from a
//!   standalone [`spawn_watchdog`] thread for unmaintained deployments —
//!   flags any wait that has exceeded the configured threshold, identifies
//!   the culprit side (EBR readers still inside an old-phase critical
//!   section vs. registered QSBR handles that have not announced
//!   quiescence, by thread ordinal), bumps `rcu_grace_stalls_total`, and
//!   records a [`rp_obs::TraceKind::GraceStall`] event carrying the flavor.
//! * With [`StallConfig::panic_on_stall`] (env `RP_RCU_STALL_PANIC`), a
//!   flagged stall panics with the report instead — torture suites convert
//!   silent hangs into named failures.
//!
//! The detector observes only the global domains (the ones behind
//! [`crate::GraceSync`]); private test domains never stamp.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::domain::RcuDomain;
use crate::qsbr::QsbrDomain;

/// Which read-side flavor a stamped grace-period wait covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallFlavor {
    /// The EBR (epoch / memory-barrier) flavor.
    Ebr,
    /// The QSBR (quiescent-state) flavor.
    Qsbr,
}

impl StallFlavor {
    /// The flavor tag packed into `GraceStall` trace values.
    pub fn as_bits(self) -> u64 {
        match self {
            StallFlavor::Ebr => rp_obs::STALL_FLAVOR_EBR,
            StallFlavor::Qsbr => rp_obs::STALL_FLAVOR_QSBR,
        }
    }

    /// Human-readable name used in stall reports.
    pub fn name(self) -> &'static str {
        match self {
            StallFlavor::Ebr => "ebr",
            StallFlavor::Qsbr => "qsbr",
        }
    }
}

/// Stall-detection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallConfig {
    /// A grace-period wait pending longer than this is flagged.
    pub threshold: Duration,
    /// Panic with the stall report instead of only counting it
    /// (env `RP_RCU_STALL_PANIC`).
    pub panic_on_stall: bool,
}

/// Default stall threshold when `RP_RCU_STALL_THRESHOLD_MS` is unset: well
/// past any healthy grace period (which completes in microseconds to
/// milliseconds even under torture), so production deployments only ever
/// flag genuine reader misbehavior.
pub const DEFAULT_STALL_THRESHOLD: Duration = Duration::from_millis(1000);

impl Default for StallConfig {
    fn default() -> Self {
        StallConfig {
            threshold: DEFAULT_STALL_THRESHOLD,
            panic_on_stall: false,
        }
    }
}

impl StallConfig {
    /// Reads the configuration from the environment:
    /// `RP_RCU_STALL_THRESHOLD_MS` (integer milliseconds, minimum 10) and
    /// `RP_RCU_STALL_PANIC` (`1`/`true`/`on`).
    pub fn from_env() -> StallConfig {
        let threshold = std::env::var("RP_RCU_STALL_THRESHOLD_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(|ms| Duration::from_millis(ms.max(10)))
            .unwrap_or(DEFAULT_STALL_THRESHOLD);
        let panic_on_stall = std::env::var("RP_RCU_STALL_PANIC")
            .map(|v| matches!(v.as_str(), "1" | "true" | "on"))
            .unwrap_or(false);
        StallConfig {
            threshold,
            panic_on_stall,
        }
    }
}

/// Concurrent grace-period waits the detector can track at once. Waits are
/// serialized per domain (each holds its domain's `gp_lock`), so live
/// stamps are bounded by the number of threads blocked in a funnel wait;
/// overflow simply leaves the excess waits unstamped.
const STALL_SLOTS: usize = 16;

#[derive(Default)]
struct StampSlot {
    /// 1 = claimed (fields may be in flux), publishes via `begin_us`.
    busy: AtomicU64,
    /// Wait begin time ([`rp_obs::now_us`], saturated to at least 1);
    /// 0 = no wait published in this slot.
    begin_us: AtomicU64,
    /// [`StallFlavor::as_bits`] of the stamped wait.
    flavor: AtomicU64,
    /// Set once the stall has been reported, so a wait is flagged at most
    /// once however many checkers race.
    reported: AtomicU64,
}

/// The process-wide stall detector: the stamp slots plus the table mapping
/// registered QSBR reader ordinals to their thread names (for attribution).
pub struct StallDetector {
    slots: [StampSlot; STALL_SLOTS],
    threads: Mutex<Vec<(u64, String)>>,
}

impl std::fmt::Debug for StallDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StallDetector")
            .field("pending", &self.pending_waits())
            .field("tracked_threads", &self.threads.lock().len())
            .finish()
    }
}

impl Default for StallDetector {
    fn default() -> Self {
        StallDetector::new()
    }
}

/// Returns the process-wide stall detector.
pub fn detector() -> &'static StallDetector {
    static GLOBAL: OnceLock<StallDetector> = OnceLock::new();
    GLOBAL.get_or_init(StallDetector::new)
}

/// RAII stamp of one in-progress grace-period wait; dropping it (the wait
/// completed) clears the slot.
#[derive(Debug)]
pub struct StampGuard<'a> {
    detector: &'a StallDetector,
    slot: usize,
}

impl Drop for StampGuard<'_> {
    fn drop(&mut self) {
        let slot = &self.detector.slots[self.slot];
        slot.begin_us.store(0, Ordering::Release);
        slot.reported.store(0, Ordering::Relaxed);
        slot.busy.store(0, Ordering::Release);
    }
}

impl StallDetector {
    /// Creates an isolated detector instance (tests; production code uses
    /// [`detector`]).
    pub fn new() -> StallDetector {
        StallDetector {
            slots: Default::default(),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Stamps the begin of a grace-period wait of `flavor`. Returns `None`
    /// (the wait goes unwatched) when every slot is taken.
    pub fn stamp_begin(&self, flavor: StallFlavor) -> Option<StampGuard<'_>> {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .busy
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            slot.flavor.store(flavor.as_bits(), Ordering::Relaxed);
            slot.reported.store(0, Ordering::Relaxed);
            slot.begin_us
                .store(rp_obs::now_us().max(1), Ordering::Release);
            return Some(StampGuard {
                detector: self,
                slot: i,
            });
        }
        None
    }

    /// Number of grace-period waits currently stamped (tests/diagnostics).
    pub fn pending_waits(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.begin_us.load(Ordering::Acquire) != 0)
            .count()
    }

    /// Records that QSBR reader `ordinal` belongs to a thread named `name`
    /// (called by [`QsbrDomain`] registration on the global domain).
    pub(crate) fn track_thread(&self, ordinal: u64, name: String) {
        self.threads.lock().push((ordinal, name));
    }

    /// Forgets reader `ordinal` (called when the handle drops, so a
    /// registered-but-never-used handle cannot leave a dead ordinal
    /// behind).
    pub(crate) fn untrack_thread(&self, ordinal: u64) {
        let mut threads = self.threads.lock();
        if let Some(pos) = threads.iter().position(|(o, _)| *o == ordinal) {
            threads.swap_remove(pos);
        }
    }

    /// The QSBR reader ordinals currently tracked (tests/diagnostics).
    pub fn tracked_ordinals(&self) -> Vec<u64> {
        self.threads.lock().iter().map(|(o, _)| *o).collect()
    }

    /// Scans the stamp slots and flags every wait pending longer than
    /// `config.threshold` that has not already been flagged. Each flagged
    /// stall bumps `rcu_grace_stalls_total`, records a
    /// [`rp_obs::TraceKind::GraceStall`] trace event carrying the flavor
    /// and elapsed nanoseconds, and prints an attribution report to
    /// stderr; with `config.panic_on_stall` it panics with the report
    /// instead. Returns how many stalls this call flagged.
    pub fn check_now(&self, config: &StallConfig) -> usize {
        let threshold_us = u64::try_from(config.threshold.as_micros()).unwrap_or(u64::MAX);
        let now = rp_obs::now_us();
        let mut flagged = 0;
        for slot in self.slots.iter() {
            let begin = slot.begin_us.load(Ordering::Acquire);
            if begin == 0 || now.saturating_sub(begin) < threshold_us {
                continue;
            }
            if slot
                .reported
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                continue; // already flagged (or a racing checker won)
            }
            // Re-read the begin time: the wait may have completed and the
            // slot been reused between the first load and the CAS. A fresh
            // wait is under threshold and is skipped; its `reported` flag
            // was re-zeroed by the reuse, so it is still watchable.
            let begin = slot.begin_us.load(Ordering::Acquire);
            if begin == 0 || now.saturating_sub(begin) < threshold_us {
                continue;
            }
            let elapsed_us = now - begin;
            let flavor = match slot.flavor.load(Ordering::Relaxed) {
                rp_obs::STALL_FLAVOR_QSBR => StallFlavor::Qsbr,
                _ => StallFlavor::Ebr,
            };
            let obs = rp_obs::global();
            obs.rcu.grace_stalls_total.inc();
            obs.trace.record(
                rp_obs::TraceKind::GraceStall,
                rp_obs::pack_stall(flavor.as_bits(), elapsed_us.saturating_mul(1000)),
            );
            let report = self.report(flavor, elapsed_us);
            if config.panic_on_stall {
                panic!("{report}");
            }
            eprintln!("{report}");
            flagged += 1;
        }
        flagged
    }

    /// Builds the human-readable attribution line for a flagged stall.
    /// Slow path only — allocates freely.
    fn report(&self, flavor: StallFlavor, elapsed_us: u64) -> String {
        let culprit = match flavor {
            StallFlavor::Ebr => {
                let blocking = RcuDomain::global().readers_blocking_grace();
                format!("{blocking} EBR reader(s) still inside an old-phase critical section")
            }
            StallFlavor::Qsbr => {
                let lagging = QsbrDomain::global().lagging_ordinals();
                if lagging.is_empty() {
                    "no lagging QSBR reader found (it may have just resolved)".to_string()
                } else {
                    let threads = self.threads.lock();
                    let names: Vec<String> = lagging
                        .iter()
                        .map(|o| {
                            let name = threads
                                .iter()
                                .find(|(ord, _)| ord == o)
                                .map(|(_, n)| n.as_str())
                                .unwrap_or("?");
                            format!("ordinal {o} ({name})")
                        })
                        .collect();
                    format!("QSBR reader(s) not quiescent: {}", names.join(", "))
                }
            }
        };
        format!(
            "rcu grace-period stall: {} grace period pending for {} ms \
             (threshold exceeded); culprit: {}",
            flavor.name(),
            elapsed_us / 1000,
            culprit
        )
    }
}

/// Runs [`StallDetector::check_now`] with the environment configuration
/// ([`StallConfig::from_env`], read once per process). Called from the
/// `rp-maint` heartbeat so maintained deployments need no extra thread.
pub fn check_global() -> usize {
    static CONFIG: OnceLock<StallConfig> = OnceLock::new();
    detector().check_now(CONFIG.get_or_init(StallConfig::from_env))
}

/// A running stall watchdog thread; dropping the handle stops and joins
/// it.
#[derive(Debug)]
pub struct StallWatchdog {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl StallWatchdog {
    /// Signals the watchdog to exit and waits for it. Returns `Err` if the
    /// watchdog thread panicked (i.e. `panic_on_stall` fired).
    pub fn stop(mut self) -> std::thread::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        match self.thread.take() {
            Some(t) => t.join(),
            None => Ok(()),
        }
    }
}

impl Drop for StallWatchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Spawns a standalone watchdog thread that checks for stalls every
/// quarter threshold (clamped to 5–250 ms), guaranteeing detection within
/// well under 2× the configured threshold even when no maintenance
/// heartbeat runs.
pub fn spawn_watchdog(config: StallConfig) -> StallWatchdog {
    let stop = Arc::new(AtomicBool::new(false));
    let tick = (config.threshold / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
    let thread = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("rp-rcu-stall-watchdog".into())
            .spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    detector().check_now(&config);
                    std::thread::sleep(tick);
                }
            })
            .expect("spawn stall watchdog")
    };
    StallWatchdog {
        stop,
        thread: Some(thread),
    }
}

/// Ensures a process-wide watchdog with the environment configuration is
/// running (idempotent; the thread lives for the rest of the process).
/// Servers call this at startup so stalls are detected even with
/// maintenance disabled.
pub fn ensure_global_watchdog() {
    static STARTED: OnceLock<()> = OnceLock::new();
    STARTED.get_or_init(|| {
        let config = StallConfig::from_env();
        let tick =
            (config.threshold / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
        std::thread::Builder::new()
            .name("rp-rcu-stall-watchdog".into())
            .spawn(move || loop {
                detector().check_now(&config);
                std::thread::sleep(tick);
            })
            .expect("spawn stall watchdog");
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_publish_and_clear() {
        let d = StallDetector::new();
        assert_eq!(d.pending_waits(), 0);
        let guard = d.stamp_begin(StallFlavor::Ebr).expect("a free slot");
        assert_eq!(d.pending_waits(), 1);
        drop(guard);
        assert_eq!(d.pending_waits(), 0);
    }

    #[test]
    fn fresh_waits_are_not_flagged() {
        let d = StallDetector::new();
        let _guard = d.stamp_begin(StallFlavor::Qsbr).expect("a free slot");
        let config = StallConfig {
            threshold: Duration::from_secs(3600),
            panic_on_stall: false,
        };
        assert_eq!(d.check_now(&config), 0);
    }

    #[test]
    fn an_overdue_wait_is_flagged_exactly_once() {
        let d = StallDetector::new();
        let guard = d.stamp_begin(StallFlavor::Ebr).expect("a free slot");
        let config = StallConfig {
            threshold: Duration::from_millis(10),
            panic_on_stall: false,
        };
        std::thread::sleep(Duration::from_millis(25));
        let before = rp_obs::global().rcu.grace_stalls_total.get();
        assert_eq!(d.check_now(&config), 1);
        assert_eq!(d.check_now(&config), 0, "a stall is reported once");
        assert!(rp_obs::global().rcu.grace_stalls_total.get() > before);
        drop(guard);
    }

    #[test]
    fn slot_exhaustion_degrades_to_none() {
        let d = StallDetector::new();
        let guards: Vec<_> = (0..STALL_SLOTS)
            .map(|_| d.stamp_begin(StallFlavor::Ebr).expect("a free slot"))
            .collect();
        assert!(d.stamp_begin(StallFlavor::Qsbr).is_none());
        drop(guards);
        assert!(d.stamp_begin(StallFlavor::Qsbr).is_some());
    }

    #[test]
    fn config_from_env_parses_and_clamps() {
        // Edition 2021: set_var is safe. Serialize against the other env
        // test via a lock on the variable names.
        static ENV_LOCK: Mutex<()> = Mutex::new(());
        let _env = ENV_LOCK.lock();
        std::env::remove_var("RP_RCU_STALL_THRESHOLD_MS");
        std::env::remove_var("RP_RCU_STALL_PANIC");
        assert_eq!(StallConfig::from_env(), StallConfig::default());
        std::env::set_var("RP_RCU_STALL_THRESHOLD_MS", "250");
        std::env::set_var("RP_RCU_STALL_PANIC", "1");
        let config = StallConfig::from_env();
        assert_eq!(config.threshold, Duration::from_millis(250));
        assert!(config.panic_on_stall);
        std::env::set_var("RP_RCU_STALL_THRESHOLD_MS", "3");
        assert_eq!(
            StallConfig::from_env().threshold,
            Duration::from_millis(10),
            "threshold clamps to a sane floor"
        );
        std::env::remove_var("RP_RCU_STALL_THRESHOLD_MS");
        std::env::remove_var("RP_RCU_STALL_PANIC");
    }

    #[test]
    fn watchdog_starts_and_stops_cleanly() {
        let w = spawn_watchdog(StallConfig {
            threshold: Duration::from_secs(3600),
            panic_on_stall: false,
        });
        std::thread::sleep(Duration::from_millis(20));
        w.stop().expect("watchdog exits without panicking");
    }
}
