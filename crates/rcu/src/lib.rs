//! Userspace relativistic-programming (RCU) primitives.
//!
//! This crate provides the synchronization substrate required by the
//! relativistic data structures in this workspace, mirroring the primitives
//! the paper maps onto Linux-kernel RCU / liburcu:
//!
//! * **Delimited readers** — [`pin`] / [`LocalHandle::read_lock`] enter a
//!   read-side critical section and return an [`RcuGuard`]. Readers never
//!   block, never retry, and never execute atomic read-modify-write
//!   instructions; the only cost is a store to a thread-private counter and
//!   a memory fence (the "memory barrier" flavor of userspace RCU).
//! * **Pointer publication** — [`RcuCell`] pairs release-ordered stores
//!   (`rcu_assign_pointer`) with acquire-ordered loads (`rcu_dereference`),
//!   so a reader that observes a new pointer also observes the pointee's
//!   initialisation.
//! * **Waiting for readers** — [`RcuDomain::synchronize`] blocks the caller
//!   until every read-side critical section that was in progress when the
//!   call began has completed (a *grace period*).
//! * **Deferred reclamation** — [`RcuDomain::defer`] /
//!   [`RcuDomain::defer_free`] queue destruction work that is only executed
//!   after a subsequent grace period, the userspace equivalent of
//!   `call_rcu`.
//! * **QSBR flavor** — [`qsbr::QsbrDomain`] provides the quiescent-state
//!   based flavor whose read side is entirely free of barriers, matching
//!   kernel-RCU reader cost more closely; it requires threads to announce
//!   quiescent states explicitly. [`qsbr::QsbrDomain::global`] is the
//!   process-wide domain behind `rp_hash`'s QSBR lookup path.
//! * **Cross-flavor grace periods** — [`GraceSync`] funnels writer-side
//!   waits so they cover *every* global flavor with registered readers:
//!   structures whose readers may be either EBR or QSBR readers synchronize
//!   and reclaim through it instead of a single domain.
//! * **Stall detection** — [`stall`] watches every funnel wait and flags
//!   (or, configured via `RP_RCU_STALL_PANIC`, panics on) grace periods
//!   that exceed a threshold, attributing the stall to the misbehaving
//!   read-side flavor and, for QSBR, the lagging reader's thread ordinal.
//!
//! # Example
//!
//! ```
//! use rp_rcu::{pin, RcuCell, RcuDomain};
//!
//! let domain = RcuDomain::global();
//! let cell = RcuCell::new(Box::new(41_u32));
//!
//! // Reader side: wait-free, no locks, no RMW.
//! {
//!     let guard = pin();
//!     assert_eq!(cell.load(&guard).copied(), Some(41));
//! }
//!
//! // Writer side: publish a new value, retire the old one, and reclaim it
//! // once a grace period has elapsed.
//! if let Some(old) = cell.set(Box::new(42)) {
//!     old.retire_global();
//! }
//! domain.synchronize_and_reclaim();
//!
//! let guard = pin();
//! assert_eq!(cell.load(&guard).copied(), Some(42));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cell;
mod deferred;
mod domain;
mod guard;
mod local;
pub mod qsbr;
mod reclaimer;
pub mod stall;
mod stats;
mod sync;

pub use cell::{RcuCell, RetiredPtr};
pub use deferred::Deferred;
pub use domain::RcuDomain;
pub use guard::RcuGuard;
pub use local::{global_read_nesting, pin, quiescent_with, thread_synchronize_count, LocalHandle};
pub use reclaimer::Reclaimer;
pub use stats::DomainStats;
pub use sync::GraceSync;

/// Per-reader counter bit used to track read-side critical-section nesting.
pub(crate) const GP_COUNT: usize = 1;

/// Phase bit flipped by the grace-period machinery.
///
/// The low half of the word holds the nesting count, the bit above it holds
/// the grace-period phase (the same split liburcu uses).
pub(crate) const GP_PHASE: usize = 1 << (usize::BITS / 2);

/// Mask selecting the nesting count out of a reader counter word.
pub(crate) const NEST_MASK: usize = GP_PHASE - 1;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(GP_COUNT, 1);
        assert!(GP_PHASE.is_power_of_two());
        assert_eq!(NEST_MASK & GP_PHASE, 0);
        assert_eq!(NEST_MASK + 1, GP_PHASE);
    }

    #[test]
    fn guard_nesting_is_reentrant() {
        let _outer = pin();
        let _inner = pin();
        let _innermost = pin();
        // Dropping in reverse order must leave the thread outside any
        // read-side critical section; a subsequent synchronize() from this
        // same thread would self-deadlock otherwise (checked below in
        // `synchronize_from_quiescent_thread`).
    }

    #[test]
    fn synchronize_from_quiescent_thread() {
        // A thread with no active guard must be able to complete a grace
        // period immediately, even though it is itself registered.
        {
            let _g = pin();
        }
        RcuDomain::global().synchronize();
    }

    #[test]
    fn synchronize_waits_for_active_reader() {
        let domain = RcuDomain::global();
        let reader_in_cs = Arc::new(AtomicBool::new(false));
        let release_reader = Arc::new(AtomicBool::new(false));
        let gp_done = Arc::new(AtomicBool::new(false));

        let reader = {
            let reader_in_cs = Arc::clone(&reader_in_cs);
            let release_reader = Arc::clone(&release_reader);
            thread::spawn(move || {
                let _guard = pin();
                reader_in_cs.store(true, Ordering::SeqCst);
                while !release_reader.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
            })
        };

        while !reader_in_cs.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }

        let waiter = {
            let gp_done = Arc::clone(&gp_done);
            thread::spawn(move || {
                domain.synchronize();
                gp_done.store(true, Ordering::SeqCst);
            })
        };

        // The grace period must not complete while the reader holds a guard.
        thread::sleep(Duration::from_millis(50));
        assert!(
            !gp_done.load(Ordering::SeqCst),
            "grace period completed while a reader was inside a critical section"
        );

        release_reader.store(true, Ordering::SeqCst);
        reader.join().unwrap();
        waiter.join().unwrap();
        assert!(gp_done.load(Ordering::SeqCst));
    }

    #[test]
    fn deferred_callbacks_run_after_reclaim() {
        let domain = RcuDomain::global();
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let ran = Arc::clone(&ran);
            domain.defer(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert!(ran.load(Ordering::SeqCst) <= 10);
        domain.synchronize_and_reclaim();
        assert_eq!(ran.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn publish_then_reclaim_stress() {
        // Writers repeatedly replace a published value and retire the old
        // one; readers must always observe a fully-initialised value.
        const READERS: usize = 4;
        const UPDATES: usize = 300;

        #[derive(Debug)]
        struct Payload {
            a: u64,
            b: u64,
        }

        let domain = RcuDomain::global();
        let cell = Arc::new(RcuCell::new(Box::new(Payload { a: 0, b: 0 })));
        let stop = Arc::new(AtomicBool::new(false));

        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut observed = 0_u64;
                    while !stop.load(Ordering::Relaxed) {
                        let guard = pin();
                        if let Some(p) = cell.load(&guard) {
                            // The invariant a == b must hold for every
                            // published payload; a torn or reclaimed payload
                            // would violate it.
                            assert_eq!(p.a, p.b, "reader observed a torn/reclaimed payload");
                            observed = observed.max(p.a);
                        }
                    }
                    observed
                })
            })
            .collect();

        for i in 1..=UPDATES as u64 {
            let old = cell.replace(Some(Box::new(Payload { a: i, b: i })));
            let old = old.expect("cell always holds a payload");
            // Readers of this cell pin the global domain, so retiring the
            // unpublished payload there is the correct pairing.
            old.retire_global();
            if i % 32 == 0 {
                domain.synchronize_and_reclaim();
            }
        }
        domain.synchronize_and_reclaim();

        stop.store(true, Ordering::SeqCst);
        for r in readers {
            let max = r.join().unwrap();
            assert!(max <= UPDATES as u64);
        }
    }
}
