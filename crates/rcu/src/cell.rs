//! Pointer publication: the `rcu_assign_pointer` / `rcu_dereference` pair.

use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, Ordering};

use crate::domain::RcuDomain;
use crate::guard::RcuGuard;

/// A shared, heap-allocated slot readable by relativistic readers.
///
/// Writers publish a new value with a release-ordered store
/// (`rcu_assign_pointer`); readers load it with an acquire-ordered load
/// (`rcu_dereference`) under an [`RcuGuard`], which guarantees they observe
/// the pointee fully initialised and that the pointee outlives the guard
/// provided writers retire replaced values through the domain.
///
/// `RcuCell` owns its *current* value: dropping the cell drops the value it
/// points to at that moment. Values that have been replaced are returned to
/// the writer as [`RetiredPtr`]s, which must be retired through an
/// [`RcuDomain`] (or reclaimed manually after a grace period).
pub struct RcuCell<T> {
    ptr: AtomicPtr<T>,
    /// The cell logically owns a `Box<T>`.
    _marker: PhantomData<Box<T>>,
}

// SAFETY: an `RcuCell` hands out `&T` to multiple threads concurrently and
// moves `Box<T>` between threads (publication on one thread, reclamation on
// another), so it is `Send`/`Sync` exactly when `T` is both `Send` and
// `Sync`.
unsafe impl<T: Send + Sync> Send for RcuCell<T> {}
// SAFETY: see above.
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

impl<T> RcuCell<T> {
    /// Creates an empty (null) cell.
    pub const fn empty() -> Self {
        RcuCell {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
            _marker: PhantomData,
        }
    }

    /// Creates a cell holding `value`.
    pub fn new(value: Box<T>) -> Self {
        RcuCell {
            ptr: AtomicPtr::new(Box::into_raw(value)),
            _marker: PhantomData,
        }
    }

    /// Returns `true` if the cell currently holds no value.
    pub fn is_empty(&self) -> bool {
        self.ptr.load(Ordering::Acquire).is_null()
    }

    /// `rcu_dereference`: loads the current value under a read-side critical
    /// section.
    ///
    /// The returned reference is valid for the lifetime of the guard borrow,
    /// provided writers follow the retire-after-grace-period protocol (all
    /// writers in this crate and workspace do).
    pub fn load<'g>(&'g self, _guard: &'g RcuGuard<'_>) -> Option<&'g T> {
        let p = self.ptr.load(Ordering::Acquire);
        // SAFETY: `p` was published by `rcu_assign_pointer` (release store)
        // and we loaded it with acquire ordering, so the pointee is fully
        // initialised. The pointee cannot be freed while the guard is alive:
        // writers only free replaced values after a grace period, and the
        // guard prevents grace periods that started after its creation from
        // completing. Tying the result to `'g` (which also borrows `self`)
        // prevents use after either the guard or the cell is gone.
        unsafe { p.as_ref() }
    }

    /// Loads the raw pointer with acquire ordering.
    ///
    /// Useful for identity comparisons; dereferencing the result requires
    /// the same guarantees as [`RcuCell::load`].
    pub fn load_raw(&self) -> *mut T {
        self.ptr.load(Ordering::Acquire)
    }

    /// `rcu_assign_pointer`: publishes `new` (or clears the cell) and
    /// returns the previous value for retirement.
    ///
    /// The previous value is *not* freed: readers may still hold references
    /// to it. Retire it via [`RetiredPtr::retire`] (deferred) or reclaim it
    /// manually after [`RcuDomain::synchronize`].
    pub fn replace(&self, new: Option<Box<T>>) -> Option<RetiredPtr<T>> {
        let new_ptr = match new {
            Some(b) => Box::into_raw(b),
            None => std::ptr::null_mut(),
        };
        let old = self.ptr.swap(new_ptr, Ordering::AcqRel);
        NonNull::new(old).map(|ptr| RetiredPtr { ptr })
    }

    /// Publishes `new`, returning the previous value for retirement.
    pub fn set(&self, new: Box<T>) -> Option<RetiredPtr<T>> {
        self.replace(Some(new))
    }

    /// Clears the cell, returning the previous value for retirement.
    pub fn clear(&self) -> Option<RetiredPtr<T>> {
        self.replace(None)
    }

    /// Takes the value out of the cell through exclusive access.
    ///
    /// Because `&mut self` proves no concurrent readers exist, the value can
    /// be returned as an owned `Box` immediately.
    pub fn take_mut(&mut self) -> Option<Box<T>> {
        let old = std::mem::replace(self.ptr.get_mut(), std::ptr::null_mut());
        if old.is_null() {
            None
        } else {
            // SAFETY: the pointer was produced by `Box::into_raw` (all
            // stores into the cell go through `Box`), and `&mut self`
            // guarantees no reader or other writer can observe it anymore.
            Some(unsafe { Box::from_raw(old) })
        }
    }

    /// Returns a mutable reference to the current value through exclusive
    /// access, if any.
    pub fn get_mut(&mut self) -> Option<&mut T> {
        let p = *self.ptr.get_mut();
        // SAFETY: `&mut self` guarantees exclusive access; the pointer, if
        // non-null, is a live `Box` allocation owned by the cell.
        unsafe { p.as_mut() }
    }
}

impl<T> Default for RcuCell<T> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<T> Drop for RcuCell<T> {
    fn drop(&mut self) {
        let p = *self.ptr.get_mut();
        if !p.is_null() {
            // SAFETY: dropping the cell implies exclusive access (no reader
            // can hold a reference derived from `load`, because `load` ties
            // its result to a borrow of the cell). The pointer is a live
            // `Box` allocation owned by the cell.
            unsafe { drop(Box::from_raw(p)) }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RcuCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RcuCell({:p})", self.ptr.load(Ordering::Relaxed))
    }
}

/// An unpublished value awaiting reclamation.
///
/// Returned by [`RcuCell::replace`] and friends. The value is no longer
/// reachable by new readers, but existing readers may still hold references
/// to it, so it must not be freed until a grace period has elapsed.
///
/// Dropping a `RetiredPtr` without retiring it **leaks** the value (leaking
/// is safe; freeing early would not be).
#[must_use = "dropping a RetiredPtr leaks the value; retire it through an RcuDomain"]
pub struct RetiredPtr<T> {
    ptr: NonNull<T>,
}

// SAFETY: a `RetiredPtr` uniquely owns the right to reclaim its allocation;
// moving that right to another thread requires the pointee to be `Send`.
unsafe impl<T: Send> Send for RetiredPtr<T> {}

impl<T> RetiredPtr<T> {
    /// The raw pointer, for identity comparisons and diagnostics.
    pub fn as_ptr(&self) -> *mut T {
        self.ptr.as_ptr()
    }

    /// Queues the value to be freed by `domain` after a grace period.
    ///
    /// # Safety
    ///
    /// `domain` must be the domain whose guards protect readers of the cell
    /// this value was published in; otherwise a reader in a different domain
    /// could still hold a reference when the value is freed.
    pub unsafe fn retire(self, domain: &RcuDomain)
    where
        T: Send,
    {
        // SAFETY: the pointer came from `Box::into_raw` (all cell stores go
        // through `Box`), is unpublished, and per the caller contract the
        // domain covers every reader that might still reference it.
        unsafe { domain.defer_free(self.ptr.as_ptr()) }
    }

    /// Queues the value to be freed by the global domain after a grace
    /// period.
    ///
    /// This is safe because [`crate::pin`] guards — the only guards handed
    /// out without an explicit domain — always belong to the global domain,
    /// and data structures in this workspace use the global domain
    /// exclusively. If you built a structure on a *custom* domain, use
    /// [`RetiredPtr::retire`] with that domain instead; retiring through the
    /// wrong domain is the same mistake as calling `synchronize_rcu` on the
    /// wrong flavor in C.
    pub fn retire_global(self)
    where
        T: Send,
    {
        // SAFETY: see doc comment — the global domain covers `pin()` guards.
        unsafe { self.retire(RcuDomain::global()) }
    }

    /// Converts back into an owned `Box`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that a grace period covering every reader
    /// that could have observed this value has elapsed since it was
    /// unpublished (e.g. by calling [`RcuDomain::synchronize`]), or that no
    /// such reader can exist (exclusive access).
    pub unsafe fn into_box(self) -> Box<T> {
        // SAFETY: pointer originates from `Box::into_raw`; exclusive access
        // per the caller contract.
        unsafe { Box::from_raw(self.ptr.as_ptr()) }
    }
}

impl<T> std::fmt::Debug for RetiredPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RetiredPtr({:p})", self.ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pin;

    #[test]
    fn empty_cell_loads_none() {
        let cell: RcuCell<u32> = RcuCell::empty();
        assert!(cell.is_empty());
        let guard = pin();
        assert!(cell.load(&guard).is_none());
    }

    #[test]
    fn publish_and_load() {
        let cell = RcuCell::new(Box::new(7_u32));
        let guard = pin();
        assert_eq!(cell.load(&guard).copied(), Some(7));
        assert!(!cell.is_empty());
    }

    #[test]
    fn replace_returns_old_value_for_retirement() {
        let domain = RcuDomain::global();
        let cell = RcuCell::new(Box::new(1_u32));
        let old = cell.set(Box::new(2)).expect("had a value");
        {
            let guard = pin();
            assert_eq!(cell.load(&guard).copied(), Some(2));
        }
        // SAFETY: readers of this cell pin the global domain.
        unsafe { old.retire(domain) };
        domain.synchronize_and_reclaim();
    }

    #[test]
    fn clear_empties_the_cell() {
        let cell = RcuCell::new(Box::new(5_u32));
        let old = cell.clear().expect("had a value");
        assert!(cell.is_empty());
        old.retire_global();
        RcuDomain::global().synchronize_and_reclaim();
    }

    #[test]
    fn take_mut_returns_owned_box() {
        let mut cell = RcuCell::new(Box::new(String::from("hello")));
        let owned = cell.take_mut().expect("had a value");
        assert_eq!(*owned, "hello");
        assert!(cell.is_empty());
        assert!(cell.take_mut().is_none());
    }

    #[test]
    fn get_mut_allows_in_place_update() {
        let mut cell = RcuCell::new(Box::new(10_u32));
        *cell.get_mut().unwrap() += 1;
        let guard = pin();
        assert_eq!(cell.load(&guard).copied(), Some(11));
    }

    #[test]
    fn drop_frees_current_value() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct CountsDrop(Arc<AtomicUsize>);
        impl Drop for CountsDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let _cell = RcuCell::new(Box::new(CountsDrop(Arc::clone(&drops))));
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn into_box_after_synchronize() {
        let domain = RcuDomain::global();
        let cell = RcuCell::new(Box::new(3_u32));
        let old = cell.set(Box::new(4)).unwrap();
        domain.synchronize();
        // SAFETY: a grace period has elapsed since the value was replaced.
        let old = unsafe { old.into_box() };
        assert_eq!(*old, 3);
    }

    #[test]
    fn retired_ptr_identity_is_stable() {
        let cell = RcuCell::new(Box::new(9_u8));
        let before = cell.load_raw();
        let old = cell.clear().unwrap();
        assert_eq!(old.as_ptr(), before);
        // SAFETY: no concurrent readers in this test (value never shared).
        drop(unsafe { old.into_box() });
    }
}
