//! [`GraceSync`]: one grace-period wait covering every read-side flavor.
//!
//! The workspace's data structures historically had exactly one kind of
//! reader — threads pinning the global EBR domain ([`crate::pin`]) — so
//! every writer-side wait was a plain [`RcuDomain::synchronize`]. With the
//! QSBR read path ([`crate::qsbr`]) a second population of readers exists,
//! registered with [`QsbrDomain::global`], and a node (or bucket array) is
//! only safe to free once **both** populations have passed a grace period.
//!
//! `GraceSync` is the funnel: resize and reclamation code calls
//! [`GraceSync::synchronize`] (or the reclaiming variants) instead of
//! touching a single domain, and the funnel waits on whichever global
//! domains currently have registered readers. When no QSBR reader is
//! registered — the common case for programs that never opt into the QSBR
//! path — the extra wait costs one atomic load and nothing else, keeping
//! the EBR-only fast path unchanged.

use std::sync::{Arc, OnceLock};

use crate::domain::RcuDomain;
use crate::qsbr::QsbrDomain;

/// Synchronizes writers against every global read-side flavor at once.
///
/// See the module docs for motivation. All methods operate on the
/// process-wide global domains ([`RcuDomain::global`] and
/// [`QsbrDomain::global`]); deferred callbacks live in the EBR domain's
/// queue, as before — only the *wait* is widened.
///
/// # Panics
///
/// Every method that waits inherits the self-deadlock checks of the
/// underlying domains: it panics if the calling thread is inside an EBR
/// read-side critical section of the global domain, or has an online QSBR
/// handle registered with the global QSBR domain.
#[derive(Debug)]
pub struct GraceSync {
    ebr: &'static Arc<RcuDomain>,
    qsbr: &'static Arc<QsbrDomain>,
}

impl GraceSync {
    /// Returns the process-wide funnel.
    pub fn global() -> &'static GraceSync {
        static GLOBAL: OnceLock<GraceSync> = OnceLock::new();
        GLOBAL.get_or_init(|| GraceSync {
            ebr: RcuDomain::global(),
            qsbr: QsbrDomain::global(),
        })
    }

    /// The EBR side of the funnel (where deferred callbacks queue).
    pub fn ebr(&self) -> &Arc<RcuDomain> {
        self.ebr
    }

    /// The QSBR side of the funnel.
    pub fn qsbr(&self) -> &Arc<QsbrDomain> {
        self.qsbr
    }

    /// Waits for a grace period of every flavor that has registered
    /// readers.
    ///
    /// The EBR domain is always synchronized (its registry is maintained
    /// lazily by [`crate::pin`], so "has readers" is the steady state); the
    /// QSBR domain is synchronized only when at least one handle is
    /// registered, so programs that never use the QSBR path pay one atomic
    /// load here and nothing more.
    pub fn synchronize(&self) {
        // Chaos hook: a `rcu.grace=delay:..` plan stretches every grace
        // period, magnifying the window in which readers observe
        // mid-resize states (errors/panics make no sense for a wait that
        // cannot fail, so only the injected delay is honored).
        let _ = rp_fault::point("rcu.grace");
        // Telemetry: one relaxed load when disabled; a clock pair, a
        // histogram bump, and a trace-ring entry per flavor when enabled.
        // Each flavor's wait is also stamped into the stall detector so an
        // uncooperative reader turns into an attributed report instead of
        // a silent hang (the stamp guard clears on completion).
        let obs = rp_obs::global();
        let detector = crate::stall::detector();
        let ebr_timer = rp_obs::timer();
        let stamp = detector.stamp_begin(crate::stall::StallFlavor::Ebr);
        self.ebr.synchronize();
        drop(stamp);
        if let Some(ns) = rp_obs::elapsed_ns(ebr_timer) {
            obs.rcu.sync_ebr_ns.record(ns);
            obs.trace.record(rp_obs::TraceKind::GraceEbr, ns);
        }
        if self.qsbr.registered_readers() > 0 {
            let qsbr_timer = rp_obs::timer();
            let stamp = detector.stamp_begin(crate::stall::StallFlavor::Qsbr);
            self.qsbr.synchronize();
            drop(stamp);
            if let Some(ns) = rp_obs::elapsed_ns(qsbr_timer) {
                obs.rcu.sync_qsbr_ns.record(ns);
                obs.trace.record(rp_obs::TraceKind::GraceQsbr, ns);
            }
        }
    }

    /// Number of deferred callbacks currently queued (in the EBR domain).
    pub fn deferred_pending(&self) -> usize {
        self.ebr.deferred_pending()
    }

    /// Waits for a grace period of every flavor with registered readers,
    /// then executes every callback that was queued *before* this call
    /// began — the flavor-covering version of
    /// [`RcuDomain::synchronize_and_reclaim`].
    pub fn synchronize_and_reclaim(&self) {
        let batch = self.ebr.take_deferred();
        let executed = batch.len() as u64;
        self.synchronize();
        self.ebr.execute_deferred(batch);
        let obs = rp_obs::global();
        obs.rcu.reclaim_executed_total.add(executed);
        obs.rcu
            .reclaim_pending
            .set(self.ebr.deferred_pending() as u64);
    }

    /// Runs [`GraceSync::synchronize_and_reclaim`] only if at least
    /// `threshold` callbacks are pending. Returns `true` if a reclamation
    /// pass ran.
    pub fn reclaim_if_pending(&self, threshold: usize) -> bool {
        if self.ebr.deferred_pending() >= threshold {
            self.synchronize_and_reclaim();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn reclaim_runs_queued_callbacks() {
        let sync = GraceSync::global();
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let ran = Arc::clone(&ran);
            RcuDomain::global().defer(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        sync.synchronize_and_reclaim();
        assert_eq!(ran.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn reclaim_if_pending_respects_threshold() {
        let sync = GraceSync::global();
        // Flush whatever other tests queued so the threshold check below is
        // about *our* callbacks.
        sync.synchronize_and_reclaim();
        RcuDomain::global().defer(|| {});
        assert!(!sync.reclaim_if_pending(1_000_000));
        assert!(sync.reclaim_if_pending(1));
    }

    #[test]
    fn synchronize_waits_for_online_qsbr_reader() {
        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));

        let reader = {
            let started = Arc::clone(&started);
            let release = Arc::clone(&release);
            thread::spawn(move || {
                let h = QsbrDomain::global().register();
                started.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                h.quiescent_state();
                h.offline();
            })
        };
        while !started.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }

        let waiter = {
            let done = Arc::clone(&done);
            thread::spawn(move || {
                GraceSync::global().synchronize();
                done.store(true, Ordering::SeqCst);
            })
        };
        thread::sleep(Duration::from_millis(50));
        assert!(
            !done.load(Ordering::SeqCst),
            "GraceSync completed while a QSBR reader had not passed a quiescent state"
        );
        release.store(true, Ordering::SeqCst);
        reader.join().unwrap();
        waiter.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn without_qsbr_readers_only_the_ebr_domain_is_synchronized() {
        // The global QSBR domain may transiently have readers from other
        // tests; use the counters to check the skip logic indirectly: a
        // fresh wait with no registered readers must not bump the QSBR
        // grace-period counter.
        let sync = GraceSync::global();
        if sync.qsbr().registered_readers() > 0 {
            return; // another test is using the global domain right now
        }
        let before = sync.qsbr().stats().grace_periods;
        sync.synchronize();
        // Readers may have registered concurrently (making a wait
        // legitimate); only assert when the domain stayed empty.
        if sync.qsbr().registered_readers() == 0 {
            assert_eq!(sync.qsbr().stats().grace_periods, before);
        }
    }
}
