//! Grace-period and reclamation statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters maintained by an [`crate::RcuDomain`].
#[derive(Debug, Default)]
pub(crate) struct AtomicStats {
    pub(crate) grace_periods: AtomicU64,
    pub(crate) synchronize_calls: AtomicU64,
    pub(crate) callbacks_queued: AtomicU64,
    pub(crate) callbacks_executed: AtomicU64,
    pub(crate) readers_registered: AtomicU64,
    pub(crate) readers_unregistered: AtomicU64,
}

impl AtomicStats {
    pub(crate) fn snapshot(&self) -> DomainStats {
        DomainStats {
            grace_periods: self.grace_periods.load(Ordering::Relaxed),
            synchronize_calls: self.synchronize_calls.load(Ordering::Relaxed),
            callbacks_queued: self.callbacks_queued.load(Ordering::Relaxed),
            callbacks_executed: self.callbacks_executed.load(Ordering::Relaxed),
            readers_registered: self.readers_registered.load(Ordering::Relaxed),
            readers_unregistered: self.readers_unregistered.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of an [`crate::RcuDomain`]'s counters.
///
/// Returned by [`crate::RcuDomain::stats`]. Counters are monotonically
/// increasing over the lifetime of the domain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomainStats {
    /// Number of grace periods that have completed.
    pub grace_periods: u64,
    /// Number of calls to `synchronize` (each performs one grace period).
    pub synchronize_calls: u64,
    /// Number of deferred callbacks queued via `defer` / `defer_free`.
    pub callbacks_queued: u64,
    /// Number of deferred callbacks that have been executed.
    pub callbacks_executed: u64,
    /// Number of reader registrations over the domain's lifetime.
    pub readers_registered: u64,
    /// Number of reader unregistrations over the domain's lifetime.
    pub readers_unregistered: u64,
}

impl DomainStats {
    /// Number of deferred callbacks still waiting for a grace period.
    pub fn callbacks_pending(&self) -> u64 {
        self.callbacks_queued
            .saturating_sub(self.callbacks_executed)
    }

    /// Number of readers currently registered with the domain.
    pub fn readers_current(&self) -> u64 {
        self.readers_registered
            .saturating_sub(self.readers_unregistered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let stats = AtomicStats::default();
        stats.grace_periods.store(3, Ordering::Relaxed);
        stats.callbacks_queued.store(7, Ordering::Relaxed);
        stats.callbacks_executed.store(5, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.grace_periods, 3);
        assert_eq!(snap.callbacks_pending(), 2);
    }

    #[test]
    fn pending_and_current_saturate() {
        let snap = DomainStats {
            callbacks_queued: 1,
            callbacks_executed: 2,
            readers_registered: 0,
            readers_unregistered: 1,
            ..DomainStats::default()
        };
        assert_eq!(snap.callbacks_pending(), 0);
        assert_eq!(snap.readers_current(), 0);
    }
}
