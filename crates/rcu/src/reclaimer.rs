//! A background reclaimer thread (the `call_rcu` helper-thread equivalent).
//!
//! Writers that retire memory with [`RcuDomain::defer`] / `defer_free` can
//! either reclaim synchronously at convenient points
//! ([`RcuDomain::synchronize_and_reclaim`]) or hand the work to a
//! [`Reclaimer`], which wakes periodically — or when kicked — and runs a
//! grace period plus the pending callbacks on its own thread, keeping
//! grace-period latency entirely off the writer's fast path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::domain::RcuDomain;
use crate::sync::GraceSync;

struct Shared {
    stop: AtomicBool,
    kicked: Mutex<bool>,
    wakeup: Condvar,
}

/// Handle to a background reclamation thread for one [`RcuDomain`].
///
/// Dropping the handle stops the thread after one final reclamation pass, so
/// callbacks queued before the drop are guaranteed to run.
pub struct Reclaimer {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<u64>>,
}

impl Reclaimer {
    /// Spawns a reclaimer for `domain` that wakes at least every `interval`.
    ///
    /// When `domain` is the global domain, reclamation passes go through
    /// [`GraceSync`] so the wait also covers registered QSBR readers —
    /// nodes retired by global-domain writers may be referenced by either
    /// flavor.
    pub fn spawn(domain: Arc<RcuDomain>, interval: Duration) -> Self {
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            kicked: Mutex::new(false),
            wakeup: Condvar::new(),
        });
        let covers_global = Arc::ptr_eq(&domain, RcuDomain::global());
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("rcu-reclaimer".to_string())
            .spawn(move || {
                let mut passes = 0_u64;
                loop {
                    {
                        let mut kicked = thread_shared.kicked.lock();
                        if !*kicked && !thread_shared.stop.load(Ordering::SeqCst) {
                            thread_shared.wakeup.wait_for(&mut kicked, interval);
                        }
                        *kicked = false;
                    }
                    let stopping = thread_shared.stop.load(Ordering::SeqCst);
                    if domain.deferred_pending() > 0 || stopping {
                        if covers_global {
                            GraceSync::global().synchronize_and_reclaim();
                        } else {
                            domain.synchronize_and_reclaim();
                        }
                        passes += 1;
                    }
                    if stopping {
                        return passes;
                    }
                }
            })
            .expect("spawn rcu-reclaimer thread");
        Reclaimer {
            shared,
            thread: Some(thread),
        }
    }

    /// Spawns a reclaimer for the global domain with a 10 ms wake interval.
    /// Its passes cover both global read-side flavors (see
    /// [`Reclaimer::spawn`]).
    pub fn spawn_global() -> Self {
        Self::spawn(Arc::clone(RcuDomain::global()), Duration::from_millis(10))
    }

    /// Wakes the reclaimer immediately (e.g. after retiring a large batch).
    pub fn kick(&self) {
        let mut kicked = self.shared.kicked.lock();
        *kicked = true;
        self.shared.wakeup.notify_one();
    }

    /// Stops the thread after one final reclamation pass and returns the
    /// number of passes it performed over its lifetime.
    pub fn shutdown(mut self) -> u64 {
        self.stop_and_join().unwrap_or(0)
    }

    fn stop_and_join(&mut self) -> Option<u64> {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.kick();
        self.thread
            .take()
            .map(|t| t.join().expect("reclaimer thread panicked"))
    }
}

impl Drop for Reclaimer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for Reclaimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reclaimer")
            .field("running", &self.thread.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn reclaimer_runs_queued_callbacks_without_writer_involvement() {
        let domain = RcuDomain::new();
        let reclaimer = Reclaimer::spawn(Arc::clone(&domain), Duration::from_millis(5));
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let ran = Arc::clone(&ran);
            domain.defer(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        reclaimer.kick();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ran.load(Ordering::SeqCst) < 32 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(ran.load(Ordering::SeqCst), 32);
        assert!(reclaimer.shutdown() >= 1);
    }

    #[test]
    fn shutdown_flushes_remaining_callbacks() {
        let domain = RcuDomain::new();
        let reclaimer = Reclaimer::spawn(Arc::clone(&domain), Duration::from_secs(3600));
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let ran = Arc::clone(&ran);
            domain.defer(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        // The interval is huge, so only the shutdown pass can run it.
        reclaimer.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(domain.deferred_pending(), 0);
    }

    #[test]
    fn dropping_the_handle_stops_the_thread() {
        let domain = RcuDomain::new();
        {
            let _reclaimer = Reclaimer::spawn(Arc::clone(&domain), Duration::from_millis(5));
            domain.defer(|| {});
        }
        // After drop, the callback queued above must have been executed.
        assert_eq!(domain.deferred_pending(), 0);
    }

    #[test]
    fn global_reclaimer_spawns_and_shuts_down() {
        let reclaimer = Reclaimer::spawn_global();
        RcuDomain::global().defer(|| {});
        reclaimer.kick();
        reclaimer.shutdown();
    }
}
