//! Quiescent-state-based reclamation (QSBR): the barrier-free reader flavor.
//!
//! In the QSBR flavor, entering and leaving a read-side critical section
//! costs *nothing at all* — not even a memory fence — which matches the
//! read-side cost of kernel RCU more closely than the memory-barrier flavor
//! in [`crate`]. The price is that every registered thread must periodically
//! announce a *quiescent state* (a point at which it holds no RCU-protected
//! references) or declare itself offline; a grace period completes only once
//! every online thread has done so.
//!
//! The benchmark harness uses this flavor to quantify the gap between the
//! two read-side costs (see the `rcu_primitives` Criterion bench).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

use crate::stats::{AtomicStats, DomainStats};

/// Sentinel counter value meaning "this thread is offline".
const OFFLINE: u64 = 0;

/// Per-thread QSBR state.
#[derive(Debug)]
struct QsbrReader {
    /// Last grace-period value this thread has passed through, or
    /// [`OFFLINE`].
    ctr: AtomicU64,
}

/// A QSBR domain: registered threads plus the grace-period counter.
#[derive(Debug)]
pub struct QsbrDomain {
    gp_ctr: AtomicU64,
    gp_lock: Mutex<()>,
    registry: Mutex<Vec<Arc<CachePadded<QsbrReader>>>>,
    stats: AtomicStats,
}

impl Default for QsbrDomain {
    fn default() -> Self {
        QsbrDomain {
            // Start at 1 so that 0 can mean "offline".
            gp_ctr: AtomicU64::new(1),
            gp_lock: Mutex::new(()),
            registry: Mutex::new(Vec::new()),
            stats: AtomicStats::default(),
        }
    }
}

impl QsbrDomain {
    /// Creates a fresh QSBR domain.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers the calling thread; it starts *online* and quiescent.
    pub fn register(self: &Arc<Self>) -> QsbrHandle {
        let state = Arc::new(CachePadded::new(QsbrReader {
            ctr: AtomicU64::new(self.gp_ctr.load(Ordering::SeqCst)),
        }));
        self.registry.lock().push(Arc::clone(&state));
        self.stats
            .readers_registered
            .fetch_add(1, Ordering::Relaxed);
        QsbrHandle {
            domain: Arc::clone(self),
            state,
        }
    }

    /// Waits until every online registered thread has passed through a
    /// quiescent state after this call began.
    pub fn synchronize(&self) {
        let _gp = self.gp_lock.lock();
        self.stats.synchronize_calls.fetch_add(1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);

        // Advance the grace-period counter; readers must observe a value at
        // least this large (or be offline) before the grace period ends.
        let target = self.gp_ctr.load(Ordering::Relaxed) + 1;
        self.gp_ctr.store(target, Ordering::SeqCst);
        std::sync::atomic::fence(Ordering::SeqCst);

        let snapshot: Vec<Arc<CachePadded<QsbrReader>>> = self.registry.lock().clone();
        for reader in &snapshot {
            let mut spins = 0_u32;
            loop {
                let c = reader.ctr.load(Ordering::SeqCst);
                if c == OFFLINE || c >= target {
                    break;
                }
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else if spins < 256 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }

        std::sync::atomic::fence(Ordering::SeqCst);
        self.stats.grace_periods.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns a snapshot of this domain's counters.
    pub fn stats(&self) -> DomainStats {
        self.stats.snapshot()
    }

    /// Number of threads currently registered.
    pub fn registered_readers(&self) -> usize {
        self.registry.lock().len()
    }

    fn unregister(&self, state: &Arc<CachePadded<QsbrReader>>) {
        let mut registry = self.registry.lock();
        if let Some(pos) = registry.iter().position(|s| Arc::ptr_eq(s, state)) {
            registry.swap_remove(pos);
            self.stats
                .readers_unregistered
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A thread's registration with a [`QsbrDomain`].
///
/// The owning thread must call [`QsbrHandle::quiescent_state`] regularly (or
/// go [`QsbrHandle::offline`]) — otherwise writers calling
/// [`QsbrDomain::synchronize`] will wait forever.
pub struct QsbrHandle {
    domain: Arc<QsbrDomain>,
    state: Arc<CachePadded<QsbrReader>>,
}

impl QsbrHandle {
    /// Announces a quiescent state: the thread holds no references to
    /// RCU-protected data at this instant.
    pub fn quiescent_state(&self) {
        // Order all reads of protected data before the announcement...
        std::sync::atomic::fence(Ordering::SeqCst);
        self.state
            .ctr
            .store(self.domain.gp_ctr.load(Ordering::SeqCst), Ordering::SeqCst);
        // ...and the announcement before any subsequent reads.
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Marks the thread offline: it promises not to access RCU-protected
    /// data until [`QsbrHandle::online`] is called, and writers stop waiting
    /// for it.
    pub fn offline(&self) {
        std::sync::atomic::fence(Ordering::SeqCst);
        self.state.ctr.store(OFFLINE, Ordering::SeqCst);
    }

    /// Marks the thread online again (implies a quiescent state).
    pub fn online(&self) {
        self.state
            .ctr
            .store(self.domain.gp_ctr.load(Ordering::SeqCst), Ordering::SeqCst);
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Returns `true` if the thread is currently online.
    pub fn is_online(&self) -> bool {
        self.state.ctr.load(Ordering::Relaxed) != OFFLINE
    }

    /// Enters a read-side critical section.
    ///
    /// In QSBR this is free — the guard exists only to delimit the region in
    /// the source and to assert (in debug builds) that the thread is online.
    pub fn read_lock(&self) -> QsbrReadGuard<'_> {
        debug_assert!(
            self.is_online(),
            "QSBR read-side critical section entered while offline"
        );
        QsbrReadGuard { _handle: self }
    }

    /// The domain this handle is registered with.
    pub fn domain(&self) -> &Arc<QsbrDomain> {
        &self.domain
    }

    /// Runs `f` with the thread marked offline, restoring the online state
    /// afterwards. Useful around blocking operations.
    pub fn offline_scope<R>(&self, f: impl FnOnce() -> R) -> R {
        self.offline();
        let r = f();
        self.online();
        r
    }
}

impl Drop for QsbrHandle {
    fn drop(&mut self) {
        self.domain.unregister(&self.state);
    }
}

impl std::fmt::Debug for QsbrHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QsbrHandle")
            .field("online", &self.is_online())
            .finish()
    }
}

/// A QSBR read-side critical section (zero-cost marker).
pub struct QsbrReadGuard<'a> {
    _handle: &'a QsbrHandle,
}

impl std::fmt::Debug for QsbrReadGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("QsbrReadGuard")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn register_and_drop() {
        let d = QsbrDomain::new();
        let h = d.register();
        assert_eq!(d.registered_readers(), 1);
        assert!(h.is_online());
        drop(h);
        assert_eq!(d.registered_readers(), 0);
    }

    #[test]
    fn synchronize_completes_with_quiescent_readers() {
        let d = QsbrDomain::new();
        let h = d.register();
        h.quiescent_state();
        // The registered thread is the caller itself; go offline so the
        // grace period does not wait on us.
        h.offline();
        d.synchronize();
        h.online();
        assert_eq!(d.stats().grace_periods, 1);
    }

    #[test]
    fn synchronize_waits_for_online_reader() {
        let d = QsbrDomain::new();
        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));

        let reader = {
            let d = Arc::clone(&d);
            let started = Arc::clone(&started);
            let release = Arc::clone(&release);
            thread::spawn(move || {
                let h = d.register();
                let _g = h.read_lock();
                started.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                #[allow(clippy::drop_non_drop)] // explicit end of the read section
                drop(_g);
                h.quiescent_state();
            })
        };

        while !started.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }

        let waiter = {
            let d = Arc::clone(&d);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                d.synchronize();
                done.store(true, Ordering::SeqCst);
            })
        };

        thread::sleep(Duration::from_millis(50));
        assert!(
            !done.load(Ordering::SeqCst),
            "grace period completed before the online reader passed a quiescent state"
        );

        release.store(true, Ordering::SeqCst);
        reader.join().unwrap();
        waiter.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn offline_readers_do_not_block_grace_periods() {
        let d = QsbrDomain::new();
        let h = d.register();
        h.offline();
        assert!(!h.is_online());
        d.synchronize();
        d.synchronize();
        assert_eq!(d.stats().grace_periods, 2);
    }

    #[test]
    fn offline_scope_restores_online_state() {
        let d = QsbrDomain::new();
        let h = d.register();
        let x = h.offline_scope(|| {
            assert!(!h.is_online());
            5
        });
        assert_eq!(x, 5);
        assert!(h.is_online());
    }

    #[test]
    fn concurrent_quiescence_stress() {
        let d = QsbrDomain::new();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let h = d.register();
                    while !stop.load(Ordering::Relaxed) {
                        {
                            let _g = h.read_lock();
                        }
                        h.quiescent_state();
                    }
                })
            })
            .collect();

        for _ in 0..50 {
            d.synchronize();
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(d.stats().grace_periods, 50);
    }
}
