//! Quiescent-state-based reclamation (QSBR): the barrier-free reader flavor.
//!
//! In the QSBR flavor, entering and leaving a read-side critical section
//! costs *nothing at all* — not even a memory fence — which matches the
//! read-side cost of kernel RCU more closely than the memory-barrier flavor
//! in [`crate`]. The price is that every registered thread must periodically
//! announce a *quiescent state* (a point at which it holds no RCU-protected
//! references) or declare itself offline; a grace period completes only once
//! every online thread has done so.
//!
//! The benchmark harness uses this flavor to quantify the gap between the
//! two read-side costs (see the `rcu_primitives` Criterion bench).

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

use crate::stats::{AtomicStats, DomainStats};

/// Sentinel counter value meaning "this thread is offline".
const OFFLINE: u64 = 0;

std::thread_local! {
    /// The calling thread's registered QSBR readers, keyed by domain
    /// address. [`QsbrHandle`] is `!Send`, so every handle a thread creates
    /// stays on that thread and this registry is exact. It powers two
    /// safety nets:
    ///
    /// * [`QsbrDomain::synchronize`] panics instead of self-deadlocking when
    ///   the calling thread's own handle is still online.
    /// * [`global_qsbr_online`] lets data structures postpone optional
    ///   grace-period work (reclamation, automatic resizing) on threads that
    ///   are currently QSBR readers, exactly as they already do for a held
    ///   EBR guard.
    static THREAD_READERS: RefCell<Vec<(usize, Arc<CachePadded<QsbrReader>>)>> =
        const { RefCell::new(Vec::new()) };
}

fn domain_key(domain: &QsbrDomain) -> usize {
    domain as *const QsbrDomain as usize
}

/// Returns `true` if the calling thread has an **online** [`QsbrHandle`]
/// registered with `domain`.
///
/// A thread's own online handle would make any `synchronize` it performs on
/// that domain wait for itself; callers use this to postpone or refuse such
/// waits.
pub fn thread_is_online_reader(domain: &QsbrDomain) -> bool {
    let key = domain_key(domain);
    THREAD_READERS
        .try_with(|readers| {
            readers
                .borrow()
                .iter()
                .any(|(d, state)| *d == key && state.ctr.load(Ordering::Relaxed) != OFFLINE)
        })
        .unwrap_or(false)
}

/// Returns `true` if the calling thread is currently an online reader of the
/// **global** QSBR domain ([`QsbrDomain::global`]).
///
/// This is the QSBR analogue of [`crate::global_read_nesting`]` > 0`: data
/// structures check it before optional grace-period work (deferred
/// reclamation, automatic resizing) so that a thread serving QSBR reads
/// never waits for — or deadlocks on — its own read-side activity.
pub fn global_qsbr_online() -> bool {
    thread_is_online_reader(QsbrDomain::global())
}

/// Per-thread QSBR state.
#[derive(Debug)]
struct QsbrReader {
    /// Last grace-period value this thread has passed through, or
    /// [`OFFLINE`].
    ctr: AtomicU64,
    /// Registration ordinal, unique within the domain for its lifetime —
    /// the identity stall reports attribute lagging readers by.
    ordinal: u64,
}

/// A QSBR domain: registered threads plus the grace-period counter.
#[derive(Debug)]
pub struct QsbrDomain {
    gp_ctr: AtomicU64,
    gp_lock: Mutex<()>,
    registry: Mutex<Vec<Arc<CachePadded<QsbrReader>>>>,
    next_ordinal: AtomicU64,
    stats: AtomicStats,
}

impl Default for QsbrDomain {
    fn default() -> Self {
        QsbrDomain {
            // Start at 1 so that 0 can mean "offline".
            gp_ctr: AtomicU64::new(1),
            gp_lock: Mutex::new(()),
            registry: Mutex::new(Vec::new()),
            next_ordinal: AtomicU64::new(1),
            stats: AtomicStats::default(),
        }
    }
}

impl QsbrDomain {
    /// Creates a fresh QSBR domain.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Returns the process-wide global QSBR domain.
    ///
    /// This is the domain behind `rp_hash`'s QSBR read path; writers of the
    /// global data structures synchronize it (through
    /// [`crate::GraceSync`]) whenever it has registered readers.
    pub fn global() -> &'static Arc<QsbrDomain> {
        static GLOBAL: OnceLock<Arc<QsbrDomain>> = OnceLock::new();
        GLOBAL.get_or_init(QsbrDomain::new)
    }

    /// Registers the calling thread; it starts *online* and quiescent.
    ///
    /// The returned handle is `!Send`: QSBR bookkeeping is inherently
    /// per-thread (the whole point is that the *owning thread* announces its
    /// own quiescent states), and pinning the handle to its thread is what
    /// makes [`thread_is_online_reader`] exact.
    pub fn register(self: &Arc<Self>) -> QsbrHandle {
        let state = Arc::new(CachePadded::new(QsbrReader {
            ctr: AtomicU64::new(self.gp_ctr.load(Ordering::SeqCst)),
            ordinal: self.next_ordinal.fetch_add(1, Ordering::Relaxed),
        }));
        self.registry.lock().push(Arc::clone(&state));
        let _ = THREAD_READERS.try_with(|readers| {
            readers
                .borrow_mut()
                .push((domain_key(self), Arc::clone(&state)));
        });
        if self.is_global() {
            // The stall detector attributes lagging readers by ordinal;
            // give it the thread name while we still know it.
            let name = std::thread::current()
                .name()
                .unwrap_or("unnamed")
                .to_string();
            crate::stall::detector().track_thread(state.ordinal, name);
        }
        self.stats
            .readers_registered
            .fetch_add(1, Ordering::Relaxed);
        QsbrHandle {
            domain: Arc::clone(self),
            state,
            _not_send: PhantomData,
        }
    }

    fn is_global(&self) -> bool {
        std::ptr::eq(self, Arc::as_ptr(Self::global()))
    }

    /// Waits until every online registered thread has passed through a
    /// quiescent state after this call began.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread itself has an online [`QsbrHandle`]
    /// registered with this domain — the grace period could never complete
    /// while the caller counts as a reader (announce a quiescent state won't
    /// help: a *new* grace period needs a *new* announcement, which the
    /// caller, busy waiting, would never make). Go
    /// [`QsbrHandle::offline`] first.
    pub fn synchronize(&self) {
        if thread_is_online_reader(self) {
            panic!(
                "QsbrDomain::synchronize called while the calling thread's own QSBR handle \
                 is online; go offline first (this would otherwise deadlock)"
            );
        }
        let _gp = self.gp_lock.lock();
        self.stats.synchronize_calls.fetch_add(1, Ordering::Relaxed);
        crate::local::note_synchronize();
        std::sync::atomic::fence(Ordering::SeqCst);

        // Advance the grace-period counter; readers must observe a value at
        // least this large (or be offline) before the grace period ends.
        let target = self.gp_ctr.load(Ordering::Relaxed) + 1;
        self.gp_ctr.store(target, Ordering::SeqCst);
        std::sync::atomic::fence(Ordering::SeqCst);

        let snapshot: Vec<Arc<CachePadded<QsbrReader>>> = self.registry.lock().clone();
        for reader in &snapshot {
            let mut spins = 0_u32;
            loop {
                let c = reader.ctr.load(Ordering::SeqCst);
                if c == OFFLINE || c >= target {
                    break;
                }
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else if spins < 256 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }

        std::sync::atomic::fence(Ordering::SeqCst);
        self.stats.grace_periods.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns a snapshot of this domain's counters.
    pub fn stats(&self) -> DomainStats {
        self.stats.snapshot()
    }

    /// Number of threads currently registered.
    pub fn registered_readers(&self) -> usize {
        self.registry.lock().len()
    }

    /// Ordinals of registered readers that are online but have not yet
    /// observed the current grace-period counter — the readers a pending
    /// QSBR grace period is waiting on. The stall detector
    /// ([`crate::stall`]) uses this to attribute an overdue grace period;
    /// outside a pending `synchronize` it is normally empty (the last
    /// grace period ended only once everyone caught up or went offline).
    pub fn lagging_ordinals(&self) -> Vec<u64> {
        let target = self.gp_ctr.load(Ordering::SeqCst);
        self.registry
            .lock()
            .iter()
            .filter(|reader| {
                let c = reader.ctr.load(Ordering::SeqCst);
                c != OFFLINE && c < target
            })
            .map(|reader| reader.ordinal)
            .collect()
    }

    fn unregister(&self, state: &Arc<CachePadded<QsbrReader>>) {
        let mut registry = self.registry.lock();
        if let Some(pos) = registry.iter().position(|s| Arc::ptr_eq(s, state)) {
            registry.swap_remove(pos);
            self.stats
                .readers_unregistered
                .fetch_add(1, Ordering::Relaxed);
        }
        drop(registry);
        if self.is_global() {
            // Symmetric with `register`: the detector must never keep a
            // slot for a dead ordinal, even for a handle that was never
            // used between registration and drop.
            crate::stall::detector().untrack_thread(state.ordinal);
        }
    }
}

/// A thread's registration with a [`QsbrDomain`].
///
/// The owning thread must call [`QsbrHandle::quiescent_state`] regularly (or
/// go [`QsbrHandle::offline`]) — otherwise writers calling
/// [`QsbrDomain::synchronize`] will wait forever.
///
/// Handles are `!Send`: the registration belongs to the thread that created
/// it (see [`QsbrDomain::register`]).
pub struct QsbrHandle {
    domain: Arc<QsbrDomain>,
    state: Arc<CachePadded<QsbrReader>>,
    /// `!Send + !Sync`: quiescent bookkeeping is thread-private.
    _not_send: PhantomData<*mut ()>,
}

impl QsbrHandle {
    /// Announces a quiescent state: the thread holds no references to
    /// RCU-protected data at this instant.
    pub fn quiescent_state(&self) {
        // Order all reads of protected data before the announcement...
        std::sync::atomic::fence(Ordering::SeqCst);
        self.state
            .ctr
            .store(self.domain.gp_ctr.load(Ordering::SeqCst), Ordering::SeqCst);
        // ...and the announcement before any subsequent reads.
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Marks the thread offline: it promises not to access RCU-protected
    /// data until [`QsbrHandle::online`] is called, and writers stop waiting
    /// for it.
    pub fn offline(&self) {
        std::sync::atomic::fence(Ordering::SeqCst);
        self.state.ctr.store(OFFLINE, Ordering::SeqCst);
    }

    /// Marks the thread online again (implies a quiescent state).
    pub fn online(&self) {
        self.state
            .ctr
            .store(self.domain.gp_ctr.load(Ordering::SeqCst), Ordering::SeqCst);
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Returns `true` if the thread is currently online.
    pub fn is_online(&self) -> bool {
        self.state.ctr.load(Ordering::Relaxed) != OFFLINE
    }

    /// Enters a read-side critical section.
    ///
    /// In QSBR this is free — the guard exists only to delimit the region in
    /// the source and to assert (in debug builds) that the thread is online.
    pub fn read_lock(&self) -> QsbrReadGuard<'_> {
        debug_assert!(
            self.is_online(),
            "QSBR read-side critical section entered while offline"
        );
        QsbrReadGuard { _handle: self }
    }

    /// The domain this handle is registered with.
    pub fn domain(&self) -> &Arc<QsbrDomain> {
        &self.domain
    }

    /// This registration's ordinal, unique within its domain — the
    /// identity stall reports use for attribution.
    pub fn ordinal(&self) -> u64 {
        self.state.ordinal
    }

    /// Runs `f` with the thread marked offline, restoring the online state
    /// afterwards. Useful around blocking operations.
    pub fn offline_scope<R>(&self, f: impl FnOnce() -> R) -> R {
        self.offline();
        let r = f();
        self.online();
        r
    }
}

impl Drop for QsbrHandle {
    fn drop(&mut self) {
        // Go offline before unregistering: a `synchronize` that snapshotted
        // the registry while this handle was still listed keeps polling the
        // snapshot's `Arc` even after `unregister` removes it, and an
        // online-but-gone reader would stall that grace period forever.
        // Offline is sound here — dropping the handle proves the thread
        // holds no references obtained through it (they borrow the handle).
        self.offline();
        let _ = THREAD_READERS.try_with(|readers| {
            let mut readers = readers.borrow_mut();
            if let Some(pos) = readers
                .iter()
                .position(|(_, s)| Arc::ptr_eq(s, &self.state))
            {
                readers.swap_remove(pos);
            }
        });
        self.domain.unregister(&self.state);
    }
}

impl std::fmt::Debug for QsbrHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QsbrHandle")
            .field("online", &self.is_online())
            .finish()
    }
}

/// A QSBR read-side critical section (zero-cost marker).
pub struct QsbrReadGuard<'a> {
    _handle: &'a QsbrHandle,
}

impl std::fmt::Debug for QsbrReadGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("QsbrReadGuard")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn register_and_drop() {
        let d = QsbrDomain::new();
        let h = d.register();
        assert_eq!(d.registered_readers(), 1);
        assert!(h.is_online());
        drop(h);
        assert_eq!(d.registered_readers(), 0);
    }

    #[test]
    fn synchronize_completes_with_quiescent_readers() {
        let d = QsbrDomain::new();
        let h = d.register();
        h.quiescent_state();
        // The registered thread is the caller itself; go offline so the
        // grace period does not wait on us.
        h.offline();
        d.synchronize();
        h.online();
        assert_eq!(d.stats().grace_periods, 1);
    }

    #[test]
    fn synchronize_waits_for_online_reader() {
        let d = QsbrDomain::new();
        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));

        let reader = {
            let d = Arc::clone(&d);
            let started = Arc::clone(&started);
            let release = Arc::clone(&release);
            thread::spawn(move || {
                let h = d.register();
                let _g = h.read_lock();
                started.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                #[allow(clippy::drop_non_drop)] // explicit end of the read section
                drop(_g);
                h.quiescent_state();
            })
        };

        while !started.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }

        let waiter = {
            let d = Arc::clone(&d);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                d.synchronize();
                done.store(true, Ordering::SeqCst);
            })
        };

        thread::sleep(Duration::from_millis(50));
        assert!(
            !done.load(Ordering::SeqCst),
            "grace period completed before the online reader passed a quiescent state"
        );

        release.store(true, Ordering::SeqCst);
        reader.join().unwrap();
        waiter.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn offline_readers_do_not_block_grace_periods() {
        let d = QsbrDomain::new();
        let h = d.register();
        h.offline();
        assert!(!h.is_online());
        d.synchronize();
        d.synchronize();
        assert_eq!(d.stats().grace_periods, 2);
    }

    #[test]
    fn offline_scope_restores_online_state() {
        let d = QsbrDomain::new();
        let h = d.register();
        let x = h.offline_scope(|| {
            assert!(!h.is_online());
            5
        });
        assert_eq!(x, 5);
        assert!(h.is_online());
    }

    #[test]
    fn dropping_an_online_handle_does_not_stall_synchronize() {
        // Regression: `synchronize` snapshots the registry; a handle
        // dropped *while online* after the snapshot must not leave a stale
        // counter the grace period spins on forever. Drop goes offline
        // first, so the snapshot entry resolves.
        let d = QsbrDomain::new();
        let registered = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let reader = {
            let d = Arc::clone(&d);
            let registered = Arc::clone(&registered);
            let release = Arc::clone(&release);
            thread::spawn(move || {
                let h = d.register();
                assert!(h.is_online());
                registered.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                // Exit without ever announcing quiescence or going offline
                // explicitly: Drop must handle it.
                drop(h);
            })
        };
        while !registered.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        let waiter = {
            let d = Arc::clone(&d);
            thread::spawn(move || d.synchronize())
        };
        thread::sleep(Duration::from_millis(20));
        release.store(true, Ordering::SeqCst);
        reader.join().unwrap();
        waiter.join().unwrap();
        assert_eq!(d.stats().grace_periods, 1);
    }

    #[test]
    fn dropping_a_never_used_handle_clears_its_stall_tracking_slot() {
        // Regression (alongside the stale-counter Drop test above): a
        // handle registered on the *global* domain but never used — no
        // quiescent state, no read lock — must not leave the stall
        // detector's per-thread slot pointing at a dead ordinal.
        thread::Builder::new()
            .name("never-used-reader".into())
            .spawn(|| {
                let h = QsbrDomain::global().register();
                let ordinal = h.ordinal();
                assert!(
                    crate::stall::detector()
                        .tracked_ordinals()
                        .contains(&ordinal),
                    "registration tracks the ordinal"
                );
                drop(h);
                assert!(
                    !crate::stall::detector()
                        .tracked_ordinals()
                        .contains(&ordinal),
                    "drop must untrack the ordinal"
                );
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn lagging_ordinals_names_the_reader_that_has_not_announced() {
        let d = QsbrDomain::new();
        let registered = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let laggard = {
            let d = Arc::clone(&d);
            let registered = Arc::clone(&registered);
            let release = Arc::clone(&release);
            thread::spawn(move || {
                let h = d.register();
                let ordinal = h.ordinal();
                registered.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                h.quiescent_state();
                ordinal
            })
        };
        while !registered.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        // No grace period pending yet: nobody lags.
        assert!(d.lagging_ordinals().is_empty());
        let waiter = {
            let d = Arc::clone(&d);
            thread::spawn(move || d.synchronize())
        };
        // The synchronize advanced gp_ctr; until the reader announces, it
        // is the (only) laggard.
        let mut lagging = d.lagging_ordinals();
        while lagging.is_empty() {
            std::hint::spin_loop();
            lagging = d.lagging_ordinals();
        }
        release.store(true, Ordering::SeqCst);
        let ordinal = laggard.join().unwrap();
        waiter.join().unwrap();
        assert_eq!(lagging, vec![ordinal]);
        assert!(d.lagging_ordinals().is_empty(), "resolved after the GP");
    }

    #[test]
    fn global_domain_is_a_singleton() {
        let a = Arc::as_ptr(QsbrDomain::global());
        let b = Arc::as_ptr(QsbrDomain::global());
        assert_eq!(a, b);
    }

    #[test]
    fn thread_online_tracking_follows_handle_state() {
        // Run on a dedicated thread so other tests' handles cannot
        // interfere with the thread-local bookkeeping.
        thread::spawn(|| {
            let d = QsbrDomain::new();
            assert!(!thread_is_online_reader(&d));
            let h = d.register();
            assert!(thread_is_online_reader(&d));
            h.offline();
            assert!(!thread_is_online_reader(&d));
            h.online();
            assert!(thread_is_online_reader(&d));
            drop(h);
            assert!(!thread_is_online_reader(&d));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn online_state_is_per_domain() {
        thread::spawn(|| {
            let d1 = QsbrDomain::new();
            let d2 = QsbrDomain::new();
            let _h = d1.register();
            assert!(thread_is_online_reader(&d1));
            assert!(!thread_is_online_reader(&d2));
            // A reader of d1 must not stop this thread synchronizing d2.
            d2.synchronize();
        })
        .join()
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "own QSBR handle")]
    fn synchronize_while_online_panics_instead_of_deadlocking() {
        let d = QsbrDomain::new();
        let _h = d.register();
        d.synchronize();
    }

    #[test]
    fn synchronize_after_going_offline_succeeds() {
        thread::spawn(|| {
            let d = QsbrDomain::new();
            let h = d.register();
            h.offline();
            d.synchronize();
            assert_eq!(d.stats().grace_periods, 1);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn concurrent_quiescence_stress() {
        let d = QsbrDomain::new();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let h = d.register();
                    while !stop.load(Ordering::Relaxed) {
                        {
                            let _g = h.read_lock();
                        }
                        h.quiescent_state();
                    }
                })
            })
            .collect();

        for _ in 0..50 {
            d.synchronize();
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(d.stats().grace_periods, 50);
    }
}
