//! Grace-period machinery: the writer side of relativistic programming.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

use crate::deferred::Deferred;
use crate::stats::{AtomicStats, DomainStats};
use crate::{GP_COUNT, GP_PHASE, NEST_MASK};

/// Per-reader-thread state scanned by the grace-period machinery.
///
/// The single counter word encodes both the read-side critical-section
/// nesting depth (low half) and a snapshot of the domain's grace-period
/// phase bit (taken when the outermost critical section is entered), exactly
/// as liburcu's "memory barrier" flavor does.
#[derive(Debug, Default)]
pub(crate) struct ReaderState {
    pub(crate) ctr: AtomicUsize,
}

impl ReaderState {
    /// Returns `true` if this reader is currently inside a read-side
    /// critical section that began before the current grace-period phase.
    fn blocks_grace_period(&self, gp_ctr: usize) -> bool {
        let c = self.ctr.load(Ordering::SeqCst);
        if c & NEST_MASK == 0 {
            // Not in a read-side critical section at all.
            return false;
        }
        // In a critical section: it only blocks the grace period if it began
        // in the *previous* phase (its phase snapshot differs from the
        // current one).
        (c ^ gp_ctr) & GP_PHASE != 0
    }
}

/// An RCU domain: a set of registered reader threads plus the grace-period
/// and deferred-reclamation state that covers them.
///
/// Most users interact with the process-wide domain returned by
/// [`RcuDomain::global`], which is the one the [`crate::pin`] guards and all
/// relativistic data structures in this workspace use. Independent domains
/// can be created with [`RcuDomain::new`] for isolation (e.g. in tests);
/// readers of an independent domain must register explicitly via
/// [`crate::LocalHandle::new`].
#[derive(Debug)]
pub struct RcuDomain {
    /// Global grace-period counter; only the phase bit and the low `1`
    /// (folded nesting seed) are meaningful.
    gp_ctr: AtomicUsize,
    /// Serialises grace periods (writers waiting for readers).
    gp_lock: Mutex<()>,
    /// Registered reader threads.
    registry: Mutex<Vec<Arc<CachePadded<ReaderState>>>>,
    /// Deferred reclamation queue (`call_rcu` equivalent).
    deferred: Mutex<Vec<Deferred>>,
    /// Cheap length mirror of `deferred` so writers can poll without locking.
    deferred_len: AtomicUsize,
    stats: AtomicStats,
}

impl Default for RcuDomain {
    fn default() -> Self {
        Self::new_unregistered()
    }
}

impl RcuDomain {
    fn new_unregistered() -> Self {
        RcuDomain {
            // Start with the nesting seed set so readers copying this value
            // enter their critical section with a nesting count of one.
            gp_ctr: AtomicUsize::new(GP_COUNT),
            gp_lock: Mutex::new(()),
            registry: Mutex::new(Vec::new()),
            deferred: Mutex::new(Vec::new()),
            deferred_len: AtomicUsize::new(0),
            stats: AtomicStats::default(),
        }
    }

    /// Creates a fresh, independent domain.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::new_unregistered())
    }

    /// Returns the process-wide global domain.
    ///
    /// This is the domain used by [`crate::pin`] and by every relativistic
    /// data structure in this workspace.
    pub fn global() -> &'static Arc<RcuDomain> {
        static GLOBAL: OnceLock<Arc<RcuDomain>> = OnceLock::new();
        GLOBAL.get_or_init(RcuDomain::new)
    }

    /// Registers a new reader with this domain and returns its state record.
    pub(crate) fn register_reader(&self) -> Arc<CachePadded<ReaderState>> {
        let state = Arc::new(CachePadded::new(ReaderState::default()));
        self.registry.lock().push(Arc::clone(&state));
        self.stats
            .readers_registered
            .fetch_add(1, Ordering::Relaxed);
        state
    }

    /// Removes a reader's state record from the registry.
    ///
    /// The caller must guarantee the reader is not inside a read-side
    /// critical section (its nesting count is zero); [`crate::LocalHandle`]
    /// enforces this by leaking the record otherwise.
    pub(crate) fn unregister_reader(&self, state: &Arc<CachePadded<ReaderState>>) {
        let mut registry = self.registry.lock();
        if let Some(pos) = registry.iter().position(|s| Arc::ptr_eq(s, state)) {
            registry.swap_remove(pos);
            self.stats
                .readers_unregistered
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current value of the grace-period counter (read by `read_lock`).
    pub(crate) fn gp_ctr_relaxed(&self) -> usize {
        self.gp_ctr.load(Ordering::Relaxed)
    }

    /// Waits for a grace period: every read-side critical section that was
    /// in progress when this call began is guaranteed to have completed when
    /// it returns.
    ///
    /// This is the `synchronize_rcu` equivalent. It never blocks readers; it
    /// only blocks the calling (writer) thread.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a read-side critical section of the
    /// global domain (that would otherwise self-deadlock: the grace period
    /// can never end while the caller's own guard is alive).
    pub fn synchronize(&self) {
        if std::ptr::eq(self, Arc::as_ptr(Self::global()))
            && crate::local::global_read_nesting() > 0
        {
            panic!(
                "RcuDomain::synchronize called from inside a read-side critical section; \
                 drop the RcuGuard first (this would otherwise deadlock)"
            );
        }
        let _gp = self.gp_lock.lock();
        self.stats.synchronize_calls.fetch_add(1, Ordering::Relaxed);
        crate::local::note_synchronize();

        // Order all prior writes by this thread (e.g. unlinking a node)
        // before the phase flips and registry scans below.
        std::sync::atomic::fence(Ordering::SeqCst);

        // Snapshot the registry. Readers that register after this point
        // start outside any critical section (counter zero) and therefore
        // never need to be waited on: their critical sections necessarily
        // begin after ours did. Readers that unregister during the wait are
        // kept alive by the cloned `Arc`s and show a zero nesting count.
        let snapshot: Vec<Arc<CachePadded<ReaderState>>> = self.registry.lock().clone();

        // Two phase flips are required: a reader may have sampled the old
        // phase just before the first flip and entered its critical section
        // just after we scanned it, so a single flip can miss it; it cannot
        // survive two (see liburcu's `urcu_common_wait_for_readers`).
        for _ in 0..2 {
            let new_phase = self.gp_ctr.load(Ordering::Relaxed) ^ GP_PHASE;
            self.gp_ctr.store(new_phase, Ordering::SeqCst);
            std::sync::atomic::fence(Ordering::SeqCst);

            for reader in &snapshot {
                let mut spins = 0_u32;
                while reader.blocks_grace_period(new_phase) {
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else if spins < 256 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            }
        }

        // Order the registry scans before any reclamation the caller
        // performs after this function returns.
        std::sync::atomic::fence(Ordering::SeqCst);
        self.stats.grace_periods.fetch_add(1, Ordering::Relaxed);
    }

    /// Queues a closure to run after a subsequent grace period.
    ///
    /// This is the `call_rcu` equivalent. The closure is *not* run
    /// immediately and is not guaranteed to run until
    /// [`RcuDomain::synchronize_and_reclaim`] (or a drop of the domain) is
    /// called; writers in this workspace call that at natural flush points.
    pub fn defer(&self, f: impl FnOnce() + Send + 'static) {
        self.push_deferred(Deferred::new(f));
    }

    /// Queues `ptr` to be freed (as a `Box<T>`) after a subsequent grace
    /// period.
    ///
    /// # Safety
    ///
    /// * `ptr` must have been produced by [`Box::into_raw`] and must not be
    ///   freed through any other path.
    /// * `ptr` must already be unreachable to new readers (unpublished), so
    ///   that after one grace period no reader can reference it.
    /// * Readers that may still reference `ptr` must be readers of *this*
    ///   domain.
    pub unsafe fn defer_free<T: Send>(&self, ptr: *mut T) {
        // SAFETY: forwarded caller contract.
        self.push_deferred(unsafe { Deferred::free(ptr) });
    }

    /// Queues an already-constructed [`Deferred`] unit.
    pub fn defer_unit(&self, d: Deferred) {
        self.push_deferred(d);
    }

    fn push_deferred(&self, d: Deferred) {
        self.deferred.lock().push(d);
        self.deferred_len.fetch_add(1, Ordering::Relaxed);
        self.stats.callbacks_queued.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of deferred callbacks currently queued.
    pub fn deferred_pending(&self) -> usize {
        self.deferred_len.load(Ordering::Relaxed)
    }

    /// Takes the current deferred batch, leaving later arrivals queued.
    ///
    /// A grace period only covers callbacks whose unpublish happened before
    /// the grace period started, so reclaimers take the batch *first*, wait,
    /// then run it with [`RcuDomain::execute_deferred`].
    pub(crate) fn take_deferred(&self) -> Vec<Deferred> {
        let mut queue = self.deferred.lock();
        let batch = std::mem::take(&mut *queue);
        self.deferred_len.store(queue.len(), Ordering::Relaxed);
        batch
    }

    /// Runs a batch previously taken with [`RcuDomain::take_deferred`]. The
    /// caller must have waited for a full grace period (of every flavor with
    /// readers of the protected data) in between.
    pub(crate) fn execute_deferred(&self, batch: Vec<Deferred>) {
        let executed = batch.len() as u64;
        for d in batch {
            d.call();
        }
        self.stats
            .callbacks_executed
            .fetch_add(executed, Ordering::Relaxed);
    }

    /// Waits for a grace period, then executes every callback that was
    /// queued *before* this call began.
    ///
    /// Callbacks queued concurrently with the grace period are left for the
    /// next reclamation pass (they may not yet be covered by it).
    ///
    /// This waits on *this domain only*. Data structures whose readers may
    /// also be QSBR readers reclaim through
    /// [`crate::GraceSync::synchronize_and_reclaim`] instead, which widens
    /// the wait to every global flavor with registered readers.
    pub fn synchronize_and_reclaim(&self) {
        let batch = self.take_deferred();
        self.synchronize();
        self.execute_deferred(batch);
    }

    /// Runs `synchronize_and_reclaim` only if at least `threshold` callbacks
    /// are pending. Returns `true` if a reclamation pass ran.
    pub fn reclaim_if_pending(&self, threshold: usize) -> bool {
        if self.deferred_pending() >= threshold {
            self.synchronize_and_reclaim();
            true
        } else {
            false
        }
    }

    /// Waits until every callback queued before this call has executed
    /// (the `rcu_barrier` equivalent).
    pub fn barrier(&self) {
        self.synchronize_and_reclaim();
    }

    /// Returns a snapshot of this domain's counters.
    pub fn stats(&self) -> DomainStats {
        self.stats.snapshot()
    }

    /// Number of readers currently registered with this domain.
    pub fn registered_readers(&self) -> usize {
        self.registry.lock().len()
    }

    /// Number of registered readers currently inside a read-side critical
    /// section that began before the current grace-period phase — the
    /// readers a pending grace period is waiting on. The stall detector
    /// ([`crate::stall`]) uses this to attribute an overdue EBR grace
    /// period; outside a pending `synchronize` it is normally 0.
    pub fn readers_blocking_grace(&self) -> usize {
        let gp_ctr = self.gp_ctr.load(Ordering::SeqCst);
        self.registry
            .lock()
            .iter()
            .filter(|reader| reader.blocks_grace_period(gp_ctr))
            .count()
    }
}

impl Drop for RcuDomain {
    fn drop(&mut self) {
        // Exclusive access: no readers can exist (they would hold an `Arc`
        // to this domain), so pending callbacks can run immediately.
        let batch = std::mem::take(&mut *self.deferred.lock());
        for d in batch {
            d.call();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalHandle;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn fresh_domain_has_no_readers() {
        let d = RcuDomain::new();
        assert_eq!(d.registered_readers(), 0);
        assert_eq!(d.stats().grace_periods, 0);
    }

    #[test]
    fn synchronize_counts_grace_periods() {
        let d = RcuDomain::new();
        d.synchronize();
        d.synchronize();
        let s = d.stats();
        assert_eq!(s.grace_periods, 2);
        assert_eq!(s.synchronize_calls, 2);
    }

    #[test]
    fn register_and_unregister_update_registry() {
        let d = RcuDomain::new();
        let h1 = LocalHandle::new(&d);
        let h2 = LocalHandle::new(&d);
        assert_eq!(d.registered_readers(), 2);
        drop(h1);
        assert_eq!(d.registered_readers(), 1);
        drop(h2);
        assert_eq!(d.registered_readers(), 0);
        let s = d.stats();
        assert_eq!(s.readers_registered, 2);
        assert_eq!(s.readers_unregistered, 2);
    }

    #[test]
    fn reader_in_old_phase_blocks_grace_period() {
        let state = ReaderState::default();
        // Simulate a reader that entered with phase 0 while the writer has
        // flipped to phase 1.
        state.ctr.store(GP_COUNT, Ordering::SeqCst);
        assert!(state.blocks_grace_period(GP_COUNT | GP_PHASE));
        // Same phase: does not block.
        assert!(!state.blocks_grace_period(GP_COUNT));
        // Not in a critical section: never blocks.
        state.ctr.store(0, Ordering::SeqCst);
        assert!(!state.blocks_grace_period(GP_COUNT | GP_PHASE));
    }

    #[test]
    fn deferred_batch_taken_before_grace_period() {
        let d = RcuDomain::new();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let counter = Arc::clone(&counter);
            d.defer(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(d.deferred_pending(), 5);
        d.synchronize_and_reclaim();
        assert_eq!(counter.load(Ordering::SeqCst), 5);
        assert_eq!(d.deferred_pending(), 0);
        assert_eq!(d.stats().callbacks_executed, 5);
    }

    #[test]
    fn reclaim_if_pending_respects_threshold() {
        let d = RcuDomain::new();
        d.defer(|| {});
        assert!(!d.reclaim_if_pending(2));
        d.defer(|| {});
        assert!(d.reclaim_if_pending(2));
        assert_eq!(d.deferred_pending(), 0);
    }

    #[test]
    fn dropping_domain_runs_pending_callbacks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let d = RcuDomain::new();
            let counter = Arc::clone(&counter);
            d.defer(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_synchronize_calls_serialize_safely() {
        let d = RcuDomain::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let d = Arc::clone(&d);
                thread::spawn(move || {
                    for _ in 0..50 {
                        d.synchronize();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.stats().grace_periods, 200);
    }

    #[test]
    fn custom_domain_reader_blocks_only_its_domain() {
        let d1 = RcuDomain::new();
        let d2 = RcuDomain::new();
        let h1 = LocalHandle::new(&d1);
        let _guard = h1.read_lock();
        // A reader of d1 must not prevent grace periods of d2.
        d2.synchronize();
        assert_eq!(d2.stats().grace_periods, 1);
    }
}
