//! The shared rcutorture-style storm, run against every resizable RCU map
//! in the workspace: the plain relativistic table, the sharded table, and
//! the split-ordered list. One harness, one contract — no freed or torn
//! value observed, no stable key absent mid-resize, invariants intact
//! after the storm. Duration per map is `RP_TORTURE_SECS` (default 2).
//!
//! Each storm additionally runs under a grace-period stall watchdog
//! (default threshold): a healthy storm — readers announcing quiescence,
//! writers synchronizing constantly — must produce **zero** stall reports.
//! The positive cases (a stall that *should* fire, with the right flavor
//! named) live in `rp-rcu`'s `stall_detector` integration test.

use rp_hash::RpHashMap;
use rp_rcu::stall::{spawn_watchdog, StallConfig};
use rp_shard::ShardedRpMap;
use rp_splitorder::SplitOrderMap;
use rp_workload::torture::{torture_storm, Payload, TortureConfig};

/// Runs `storm` under a stall watchdog and asserts it flagged nothing.
fn assert_no_stalls(storm: impl FnOnce()) {
    let stalls_before = rp_obs::global().rcu.grace_stalls_total.get();
    let watchdog = spawn_watchdog(StallConfig::default());
    storm();
    watchdog.stop().expect("watchdog exits cleanly");
    assert_eq!(
        rp_obs::global().rcu.grace_stalls_total.get(),
        stalls_before,
        "the storm's grace periods are healthy; any stall report is a false positive"
    );
}

#[test]
fn rp_hash_map_survives_the_storm() {
    assert_no_stalls(|| {
        let map: RpHashMap<u64, Payload> = RpHashMap::with_buckets(64);
        let outcome = torture_storm(&map, &TortureConfig::default());
        assert!(outcome.resize_transitions >= 1);
    });
}

#[test]
fn sharded_rp_map_survives_the_storm() {
    assert_no_stalls(|| {
        let map: ShardedRpMap<u64, Payload> = ShardedRpMap::with_shards(4);
        let outcome = torture_storm(&map, &TortureConfig::default());
        assert!(outcome.resize_transitions >= 1);
    });
}

#[test]
fn split_order_map_survives_the_storm() {
    assert_no_stalls(|| {
        let map: SplitOrderMap<u64, Payload> = SplitOrderMap::with_buckets(64);
        let outcome = torture_storm(&map, &TortureConfig::default());
        assert!(outcome.resize_transitions >= 1);
    });
}
