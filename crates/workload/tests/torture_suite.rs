//! The shared rcutorture-style storm, run against every resizable RCU map
//! in the workspace: the plain relativistic table, the sharded table, and
//! the split-ordered list. One harness, one contract — no freed or torn
//! value observed, no stable key absent mid-resize, invariants intact
//! after the storm. Duration per map is `RP_TORTURE_SECS` (default 2).

use rp_hash::RpHashMap;
use rp_shard::ShardedRpMap;
use rp_splitorder::SplitOrderMap;
use rp_workload::torture::{torture_storm, Payload, TortureConfig};

#[test]
fn rp_hash_map_survives_the_storm() {
    let map: RpHashMap<u64, Payload> = RpHashMap::with_buckets(64);
    let outcome = torture_storm(&map, &TortureConfig::default());
    assert!(outcome.resize_transitions >= 1);
}

#[test]
fn sharded_rp_map_survives_the_storm() {
    let map: ShardedRpMap<u64, Payload> = ShardedRpMap::with_shards(4);
    let outcome = torture_storm(&map, &TortureConfig::default());
    assert!(outcome.resize_transitions >= 1);
}

#[test]
fn split_order_map_survives_the_storm() {
    let map: SplitOrderMap<u64, Payload> = SplitOrderMap::with_buckets(64);
    let outcome = torture_storm(&map, &TortureConfig::default());
    assert!(outcome.resize_transitions >= 1);
}
