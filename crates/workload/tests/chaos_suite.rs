//! The chaos suite: the torture storm and a live cache server, both run
//! with `rp-fault` failpoints **armed**.
//!
//! Two properties are on trial:
//!
//! 1. **Timing chaos does not break the maps.** Seeded delays injected at
//!    the two most timing-sensitive boundaries in the stack — grace-period
//!    synchronization (`rcu.grace`) and resize step transitions
//!    (`hash.resize.step`) — widen every race window the storm exercises.
//!    All three engines must still pass the full torture contract (no
//!    freed or torn value, no stable key absent mid-resize, invariants
//!    intact) under a stall watchdog that must flag **nothing**: the
//!    delays are small, so any stall report is a false positive.
//!
//! 2. **Fault bursts do not take the server down or lose updates.** An
//!    event-loop cache server is driven by reconnecting clients while
//!    scripted connection-handler panics, read errors and short writes
//!    fire. Every update the retrying client saw acknowledged must be
//!    readable afterwards, and the process must still serve fresh
//!    connections.
//!
//! The failpoint registry is process-global, so every test in this binary
//! serialises on a local mutex and the panic hook is quieted for the
//! injected panics (real panics still print).

use std::sync::{Mutex, Once};
use std::time::Duration;

use rp_fault::ArmGuard;
use rp_hash::RpHashMap;
use rp_kvcache::{
    start_server, CacheClient, RetryClient, RetryPolicy, RpEngine, ServerConfig, ServerHandle,
};
use rp_rcu::stall::{spawn_watchdog, StallConfig};
use rp_shard::ShardedRpMap;
use rp_splitorder::SplitOrderMap;
use rp_workload::drive_connections_reconnecting;
use rp_workload::torture::{torture_storm, Payload, TortureConfig};

/// Serialises the armed tests — the failpoint registry is process-global.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Quiet the default panic hook for the panics this suite injects on
/// purpose; anything else still reaches the original hook.
fn quiet_expected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let original = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected panic at failpoint"));
            if !expected {
                original(info);
            }
        }));
    });
}

/// The suite's fault seed: `RP_FAULT_SEED` when set (CI pins it), a fixed
/// default otherwise — either way the run is reproducible.
fn chaos_seed() -> u64 {
    std::env::var("RP_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

/// Runs `storm` under a stall watchdog and asserts zero stall reports:
/// the injected delays are two orders of magnitude below the threshold,
/// so a report would be a detector false positive.
fn assert_no_stall_false_positives(storm: impl FnOnce()) {
    let stalls_before = rp_obs::global().rcu.grace_stalls_total.get();
    let watchdog = spawn_watchdog(StallConfig::default());
    storm();
    watchdog.stop().expect("watchdog exits cleanly");
    assert_eq!(
        rp_obs::global().rcu.grace_stalls_total.get(),
        stalls_before,
        "millisecond fault delays must not trip the stall detector"
    );
}

/// Delays at the grace-period and resize-step boundaries, both armed for
/// the whole storm. Probabilities are low enough to keep throughput (the
/// storm asserts it observed resizes and generations) but high enough to
/// fire constantly at storm rates.
const STORM_PLAN: &str = "rcu.grace=delay:1ms@0.2;hash.resize.step=delay:1ms@0.1";

#[test]
fn every_engine_survives_the_storm_with_delay_faults_armed() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let _arm = ArmGuard::new(STORM_PLAN, chaos_seed());
    let config = TortureConfig::default();

    assert_no_stall_false_positives(|| {
        let map: RpHashMap<u64, Payload> = RpHashMap::with_buckets(64);
        let outcome = torture_storm(&map, &config);
        assert!(outcome.resize_transitions >= 1);
    });
    assert_no_stall_false_positives(|| {
        let map: ShardedRpMap<u64, Payload> = ShardedRpMap::with_shards(4);
        let outcome = torture_storm(&map, &config);
        assert!(outcome.resize_transitions >= 1);
    });
    assert_no_stall_false_positives(|| {
        let map: SplitOrderMap<u64, Payload> = SplitOrderMap::with_buckets(64);
        let outcome = torture_storm(&map, &config);
        assert!(outcome.resize_transitions >= 1);
    });

    assert!(
        rp_fault::injected("rcu.grace") > 0,
        "the storm must actually have hit the grace-period failpoint"
    );
}

/// The server-facing burst: handler panics, peer resets and short writes.
/// Finite counts so the burst ends while the test is still driving
/// traffic — recovery is observed in the same run.
const BURST_PLAN: &str = "net.on_data=panic*2;net.read=econnreset*3;net.writev=short:7*32";

#[test]
fn cache_server_survives_a_fault_burst_without_losing_updates() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    quiet_expected_panics();

    let engine = std::sync::Arc::new(RpEngine::with_capacity(4096));
    let mut server: ServerHandle = start_server(engine, &ServerConfig::event_loop(2))
        .expect("event server starts on an ephemeral port");
    let addr = server.addr();
    let obs = rp_obs::global();
    let panics_before = obs.net.conn_panics_total.get();
    let value = vec![0xAB_u8; 64];

    // Writes ride the retrying client: the fault plan may kill any given
    // connection mid-operation, but an acknowledged set must survive.
    let retry = RetryPolicy {
        base_backoff: Duration::from_millis(5),
        ..RetryPolicy::default()
    };
    let mut writer = RetryClient::new(addr, retry);

    let stored: Vec<u64> = {
        let _arm = ArmGuard::new(BURST_PLAN, chaos_seed());

        // Concurrent read pressure through the reconnecting driver gives
        // the read/writev/panic injections connections to land on.
        let reads = std::thread::spawn(move || {
            drive_connections_reconnecting(
                4,
                2,
                Duration::from_millis(400),
                |_idx| CacheClient::connect(addr),
                |_thread| {
                    move |conn: &mut CacheClient, ordinal: u64| {
                        conn.get(&format!("chaos-{}", ordinal % 64)).map(|_| 1)
                    }
                },
                64,
            )
        });

        let mut stored = Vec::new();
        for i in 0..64_u64 {
            if let Ok(true) = writer.set(&format!("chaos-{i}"), 0, 0, &value) {
                stored.push(i);
            }
        }
        let read_result = reads.join().expect("driver thread exits");
        let read_result = read_result.expect("at least the initial connects succeed");
        assert!(read_result.total_ops > 0, "the read side made progress");
        stored
    };

    assert!(
        !stored.is_empty(),
        "the retrying writer must land updates through the burst"
    );
    assert!(
        rp_fault::injected("net.on_data") >= 1,
        "the burst must actually have injected handler panics"
    );
    assert!(
        obs.net.conn_panics_total.get() > panics_before,
        "each injected handler panic is counted"
    );

    // Recovery: a *fresh* connection (no retries, faults disarmed) reads
    // back every acknowledged update with the right bytes.
    let mut check = CacheClient::connect(addr).expect("server still accepts after the burst");
    for i in &stored {
        let got = check
            .get(&format!("chaos-{i}"))
            .expect("post-burst reads succeed");
        assert_eq!(
            got.as_deref(),
            Some(&value[..]),
            "acknowledged update chaos-{i} lost in the fault burst"
        );
    }
    server.shutdown();
}
