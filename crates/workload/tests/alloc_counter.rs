//! Integration test that actually installs [`CountingAllocator`] as the
//! global allocator (possible only per binary, hence not a unit test) and
//! verifies the counting, attribution and tagging behaviour end to end.

use rp_workload::alloc::{
    self, set_thread_tag, tagged_allocations, thread_allocations, total_allocations,
    CountingAllocator,
};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const TAG_WORKER: u64 = 0xBEEF;

#[test]
fn counts_allocations_per_thread_and_per_tag() {
    assert!(alloc::counting_installed());

    // Allocations on this thread are observed by the thread counter.
    let thread_before = thread_allocations();
    let total_before = total_allocations();
    let mut boxes = Vec::new();
    for i in 0..100_u64 {
        boxes.push(std::hint::black_box(Box::new(i)));
    }
    assert!(
        thread_allocations() >= thread_before + 100,
        "100 boxed values must count at least 100 events"
    );
    assert!(total_allocations() >= total_before + 100);
    drop(boxes);

    // A tagged worker thread's allocations aggregate under its tag.
    let tagged_before = tagged_allocations(TAG_WORKER);
    std::thread::spawn(|| {
        set_thread_tag(TAG_WORKER);
        let mut held = Vec::new();
        for i in 0..50_u64 {
            held.push(std::hint::black_box(Box::new(i)));
        }
    })
    .join()
    .unwrap();
    assert!(
        tagged_allocations(TAG_WORKER) >= tagged_before + 50,
        "worker-thread allocations must land under its tag"
    );
}

#[test]
fn an_allocation_free_loop_counts_zero() {
    // The property fig_hotpath's gate relies on: a loop that reuses its
    // buffers adds nothing to this thread's counter.
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let before = thread_allocations();
    let mut acc = 0_u64;
    for i in 0..10_000_u64 {
        buf.clear();
        buf.extend_from_slice(&i.to_le_bytes());
        acc = acc.wrapping_add(u64::from(buf[0]));
    }
    std::hint::black_box(acc);
    assert_eq!(
        thread_allocations(),
        before,
        "a buffer-reusing loop must perform zero allocations"
    );
}
