//! A counting global allocator for allocation-regression benchmarks.
//!
//! The zero-allocation serving claim (`fig_hotpath`) needs an *objective*
//! measure of allocator traffic — on a 1-CPU container, throughput deltas
//! are noisy, but "the steady-state GET path performed N heap allocations"
//! is exact. [`CountingAllocator`] wraps the system allocator and counts
//! every allocation event (alloc / realloc / alloc_zeroed; frees are not
//! counted — the metric is *allocations per operation*) into a fixed table
//! of cache-padded per-thread slots, so the counting adds one relaxed
//! `fetch_add` per event and never allocates itself.
//!
//! Install it in a binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: rp_workload::alloc::CountingAllocator =
//!     rp_workload::alloc::CountingAllocator;
//! ```
//!
//! Threads are *tagged*: a benchmark labels its driver threads
//! ([`set_thread_tag`]) and can then split the process-wide count into
//! "my client threads" versus "everything else (the server under test)"
//! ([`tagged_allocations`]). Library code never needs the allocator
//! installed — all counters simply read zero without it (see
//! [`counting_installed`]).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Fixed number of per-thread counter slots. Threads beyond this share the
/// last slot (counts stay correct in aggregate; per-thread attribution
/// degrades gracefully).
const SLOTS: usize = 256;

/// The default tag every thread starts with.
pub const TAG_UNTAGGED: u64 = 0;

#[repr(align(64))]
struct Slot {
    events: AtomicU64,
    tag: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const SLOT_INIT: Slot = Slot {
    events: AtomicU64::new(0),
    tag: AtomicU64::new(TAG_UNTAGGED),
};

static SLOT_TABLE: [Slot; SLOTS] = [SLOT_INIT; SLOTS];
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's slot index; `usize::MAX` until claimed. Const-init so
    /// first access performs no lazy-initialisation allocation.
    static MY_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn slot_index() -> usize {
    // `try_with`: the allocator may run during thread teardown, after this
    // thread's TLS has been destroyed — fall back to the shared last slot.
    MY_SLOT
        .try_with(|slot| {
            let mut idx = slot.get();
            if idx == usize::MAX {
                idx = NEXT_SLOT.fetch_add(1, Ordering::Relaxed).min(SLOTS - 1);
                slot.set(idx);
            }
            idx
        })
        .unwrap_or(SLOTS - 1)
}

#[inline]
fn count_event() {
    SLOT_TABLE[slot_index()]
        .events
        .fetch_add(1, Ordering::Relaxed);
}

/// A [`GlobalAlloc`] that counts allocation events per thread and
/// delegates the actual work to [`System`].
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counting side uses only
// `Cell`/atomic operations and never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_event();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_event();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_event();
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocation events across every thread since process start
/// (0 when the counting allocator is not installed).
pub fn total_allocations() -> u64 {
    SLOT_TABLE
        .iter()
        .map(|slot| slot.events.load(Ordering::Relaxed))
        .sum()
}

/// Allocation events attributed to the calling thread.
pub fn thread_allocations() -> u64 {
    SLOT_TABLE[slot_index()].events.load(Ordering::Relaxed)
}

/// Tags the calling thread's counter slot so its events can be aggregated
/// with [`tagged_allocations`]. Benchmarks tag their driver threads to
/// separate client-side allocations from the server under test.
pub fn set_thread_tag(tag: u64) {
    SLOT_TABLE[slot_index()].tag.store(tag, Ordering::Relaxed);
}

/// Sum of allocation events over every slot carrying `tag`.
pub fn tagged_allocations(tag: u64) -> u64 {
    SLOT_TABLE
        .iter()
        .filter(|slot| slot.tag.load(Ordering::Relaxed) == tag)
        .map(|slot| slot.events.load(Ordering::Relaxed))
        .sum()
}

/// Probes whether [`CountingAllocator`] is this process's global
/// allocator: performs one deliberate heap allocation and checks whether
/// any counter moved. Benchmarks use this to report "allocation counting
/// unavailable" instead of a bogus zero when run without the allocator.
pub fn counting_installed() -> bool {
    let before = total_allocations();
    std::hint::black_box(Box::new(0xA5_u8));
    total_allocations() > before
}

#[cfg(test)]
mod tests {
    use super::*;

    // These unit tests run *without* the allocator installed (installing a
    // global allocator for one #[cfg(test)] module would hijack the whole
    // test binary); the integration test `alloc_counter.rs` installs it
    // for real. Here we verify the passive behaviour.
    #[test]
    fn without_installation_counters_read_zero_and_probe_says_so() {
        assert!(!counting_installed());
        assert_eq!(total_allocations(), 0);
        assert_eq!(thread_allocations(), 0);
        assert_eq!(tagged_allocations(42), 0);
    }

    #[test]
    fn tagging_is_per_thread_and_idempotent() {
        set_thread_tag(7);
        set_thread_tag(7);
        // No events counted (allocator not installed), but the tag landed
        // on exactly one slot.
        let tagged: usize = SLOT_TABLE
            .iter()
            .filter(|slot| slot.tag.load(Ordering::Relaxed) == 7)
            .count();
        assert_eq!(tagged, 1);
        set_thread_tag(TAG_UNTAGGED);
    }
}
