//! A multi-connection closed-loop client driver.
//!
//! Where [`driver::measure`](crate::driver::measure) benchmarks in-process
//! data structures, this module benchmarks *servers*: it opens N
//! connections, shares them across M driver threads (round-robin, so N can
//! vastly exceed M — exactly the regime an event-loop server is built
//! for), fires request/response operations in a closed loop for a fixed
//! duration, and reports throughput plus a latency histogram with
//! per-operation resolution.
//!
//! The driver is transport-agnostic: `connect` produces any connection
//! value (a `CacheClient`, a raw `TcpStream`, …) and `make_op` produces
//! each thread's operation closure. The kvcache figure (`fig_server`)
//! plugs in the memcached client; tests plug in an in-memory fake.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use crate::latency::LatencyHistogram;

/// The result of one [`drive_connections`] run.
#[derive(Clone)]
pub struct NetDriveResult {
    /// Completed operations across all connections.
    pub total_ops: u64,
    /// Operations that returned an error (their connection is retired, or
    /// — with [`drive_connections_reconnecting`] — replaced).
    pub errors: u64,
    /// Connections successfully re-established after an operation error
    /// (always 0 for the non-reconnecting drivers).
    pub reconnects: u64,
    /// Wall-clock measurement time.
    pub elapsed: Duration,
    /// Per-operation round-trip latency.
    pub latency: LatencyHistogram,
}

impl NetDriveResult {
    /// Aggregate throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Opens `connections` connections, spreads them over `threads` driver
/// threads, and runs `make_op`'s closures in a closed loop for `duration`.
///
/// Each thread round-robins over its share of the connections: one
/// operation on connection *i*, then *i+1*, … so every connection stays
/// live without needing a thread of its own. The per-thread operation
/// closure receives the connection and a global operation ordinal (usable
/// for key choice or read/write mixing). An operation error retires that
/// connection (counted in [`NetDriveResult::errors`]); the run continues
/// on the rest, and fails only if a thread loses *all* its connections.
pub fn drive_connections<C, Connect, MakeOp, Op>(
    connections: usize,
    threads: usize,
    duration: Duration,
    connect: Connect,
    make_op: MakeOp,
) -> io::Result<NetDriveResult>
where
    C: Send,
    Connect: Fn(usize) -> io::Result<C> + Sync,
    MakeOp: Fn(usize) -> Op + Sync,
    Op: FnMut(&mut C, u64) -> io::Result<()> + Send,
{
    drive_connections_windowed(connections, threads, duration, connect, |thread_idx| {
        let mut op = make_op(thread_idx);
        move |conn: &mut C, ordinal: u64| op(conn, ordinal).map(|()| 1)
    })
}

/// [`drive_connections`] for **pipelining** clients: each operation may
/// complete a whole *window* of requests (batch N requests into one write,
/// then read the N responses) and returns how many it completed.
///
/// The ordinal passed to the closure numbers *windows* (for the
/// closed-loop wrapper a window is one request, so the numbering is
/// unchanged there); key choice and read/write mixing key off it exactly
/// as before. Latency uses window-based accounting: the window's
/// round-trip time is recorded once **per completed request** — under
/// pipelining each request's client-observable latency is (to within a
/// batch) the window RTT, and counting per request keeps
/// [`NetDriveResult::total_ops`] equal to `latency.count()` across
/// pipelined and closed-loop runs.
pub fn drive_connections_windowed<C, Connect, MakeOp, Op>(
    connections: usize,
    threads: usize,
    duration: Duration,
    connect: Connect,
    make_op: MakeOp,
) -> io::Result<NetDriveResult>
where
    C: Send,
    Connect: Fn(usize) -> io::Result<C> + Sync,
    MakeOp: Fn(usize) -> Op + Sync,
    Op: FnMut(&mut C, u64) -> io::Result<u64> + Send,
{
    drive_core(connections, threads, duration, connect, make_op, 0)
}

/// [`drive_connections_windowed`] with **reconnect-on-error**: an errored
/// connection is replaced with a fresh one (via the same `connect`
/// callback) instead of retired, up to `reconnect_budget` total
/// replacements per driver thread. Past the budget, errors retire
/// connections as usual.
///
/// This is the chaos-run driver: with faults injected server-side (reads
/// erroring, handlers panicking), connection loss is *expected*, and the
/// measurement should show the recovered throughput rather than bleed
/// lanes until the run starves.
pub fn drive_connections_reconnecting<C, Connect, MakeOp, Op>(
    connections: usize,
    threads: usize,
    duration: Duration,
    connect: Connect,
    make_op: MakeOp,
    reconnect_budget: usize,
) -> io::Result<NetDriveResult>
where
    C: Send,
    Connect: Fn(usize) -> io::Result<C> + Sync,
    MakeOp: Fn(usize) -> Op + Sync,
    Op: FnMut(&mut C, u64) -> io::Result<u64> + Send,
{
    drive_core(
        connections,
        threads,
        duration,
        connect,
        make_op,
        reconnect_budget,
    )
}

fn drive_core<C, Connect, MakeOp, Op>(
    connections: usize,
    threads: usize,
    duration: Duration,
    connect: Connect,
    make_op: MakeOp,
    reconnect_budget: usize,
) -> io::Result<NetDriveResult>
where
    C: Send,
    Connect: Fn(usize) -> io::Result<C> + Sync,
    MakeOp: Fn(usize) -> Op + Sync,
    Op: FnMut(&mut C, u64) -> io::Result<u64> + Send,
{
    assert!(connections > 0, "need at least one connection");
    let threads = threads.clamp(1, connections);

    // Connect up front so setup cost stays outside the measured window and
    // a refused connection fails the run loudly instead of skewing it.
    // Each lane remembers its original connection index so a reconnect can
    // reproduce the original `connect` call.
    let mut lanes: Vec<Vec<(usize, C)>> = (0..threads).map(|_| Vec::new()).collect();
    for idx in 0..connections {
        lanes[idx % threads].push((idx, connect(idx)?));
    }

    let stop = AtomicBool::new(false);
    let next_op = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let error_count = AtomicU64::new(0);
    let reconnect_count = AtomicU64::new(0);

    let mut per_thread: Vec<(u64, LatencyHistogram)> = Vec::new();
    let started = std::thread::scope(|scope| -> io::Result<Instant> {
        let mut handles = Vec::new();
        for (thread_idx, mut conns) in lanes.into_iter().enumerate() {
            let stop = &stop;
            let next_op = &next_op;
            let barrier = &barrier;
            let error_count = &error_count;
            let reconnect_count = &reconnect_count;
            let make_op = &make_op;
            let connect = &connect;
            handles.push(scope.spawn(move || {
                let mut op = make_op(thread_idx);
                let mut hist = LatencyHistogram::new();
                let mut ops = 0_u64;
                let mut lane = 0_usize;
                let mut budget = reconnect_budget;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) && !conns.is_empty() {
                    lane = (lane + 1) % conns.len();
                    let ordinal = next_op.fetch_add(1, Ordering::Relaxed);
                    let begin = Instant::now();
                    match op(&mut conns[lane].1, ordinal) {
                        Ok(done) => {
                            hist.record_many(begin.elapsed(), done);
                            ops += done;
                        }
                        Err(_) => {
                            error_count.fetch_add(1, Ordering::Relaxed);
                            let (idx, _dead) = conns.swap_remove(lane);
                            if budget > 0 {
                                budget -= 1;
                                if let Ok(fresh) = connect(idx) {
                                    reconnect_count.fetch_add(1, Ordering::Relaxed);
                                    conns.push((idx, fresh));
                                }
                            }
                            lane = 0;
                        }
                    }
                }
                (ops, hist)
            }));
        }

        barrier.wait();
        let started = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::SeqCst);
        for handle in handles {
            per_thread.push(handle.join().expect("driver thread panicked"));
        }
        Ok(started)
    })?;
    let elapsed = started.elapsed();

    let mut latency = LatencyHistogram::new();
    let mut total_ops = 0;
    for (ops, hist) in &per_thread {
        total_ops += ops;
        latency.merge(hist);
    }
    Ok(NetDriveResult {
        total_ops,
        errors: error_count.load(Ordering::Relaxed),
        reconnects: reconnect_count.load(Ordering::Relaxed),
        elapsed,
        latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake connection: counts ops, optionally fails after a quota.
    struct FakeConn {
        ops: u64,
        fail_after: Option<u64>,
    }

    #[test]
    fn drives_many_connections_with_few_threads() {
        let result = drive_connections(
            16,
            3,
            Duration::from_millis(40),
            |_idx| {
                Ok(FakeConn {
                    ops: 0,
                    fail_after: None,
                })
            },
            |_thread| {
                |conn: &mut FakeConn, _ordinal| {
                    conn.ops += 1;
                    Ok(())
                }
            },
        )
        .unwrap();
        assert!(result.total_ops > 0);
        assert_eq!(result.errors, 0);
        assert_eq!(result.latency.count(), result.total_ops);
        assert!(result.elapsed >= Duration::from_millis(40));
        assert!(result.ops_per_sec() > 0.0);
    }

    #[test]
    fn windowed_driver_accounts_per_request() {
        let depth = 8_u64;
        let result = drive_connections_windowed(
            4,
            2,
            Duration::from_millis(40),
            |_idx| {
                Ok(FakeConn {
                    ops: 0,
                    fail_after: None,
                })
            },
            |_thread| {
                move |conn: &mut FakeConn, _ordinal| {
                    // One "window": depth requests complete per call.
                    conn.ops += depth;
                    Ok(depth)
                }
            },
        )
        .unwrap();
        assert!(result.total_ops >= depth, "windows completed");
        assert_eq!(
            result.total_ops % depth,
            0,
            "ops advance a window at a time"
        );
        assert_eq!(
            result.latency.count(),
            result.total_ops,
            "window RTT recorded once per request"
        );
        assert_eq!(result.errors, 0);
    }

    #[test]
    fn failed_connections_are_retired_not_fatal() {
        let result = drive_connections(
            4,
            2,
            Duration::from_millis(30),
            |idx| {
                Ok(FakeConn {
                    ops: 0,
                    // Half the connections die after 5 ops.
                    fail_after: (idx % 2 == 0).then_some(5),
                })
            },
            |_thread| {
                |conn: &mut FakeConn, _ordinal| {
                    conn.ops += 1;
                    match conn.fail_after {
                        Some(n) if conn.ops > n => {
                            Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
                        }
                        _ => Ok(()),
                    }
                }
            },
        )
        .unwrap();
        assert_eq!(result.errors, 2);
        assert!(result.total_ops > 0, "surviving connections kept going");
    }

    #[test]
    fn reconnecting_driver_replaces_dead_connections() {
        use std::sync::atomic::AtomicU64 as Counter;
        let connects = Counter::new(0);
        let result = drive_connections_reconnecting(
            2,
            1,
            Duration::from_millis(40),
            |_idx| {
                connects.fetch_add(1, Ordering::Relaxed);
                Ok(FakeConn {
                    ops: 0,
                    // Every connection dies after 3 ops; the driver must
                    // keep replacing them within its budget.
                    fail_after: Some(3),
                })
            },
            |_thread| {
                |conn: &mut FakeConn, _ordinal| {
                    conn.ops += 1;
                    match conn.fail_after {
                        Some(n) if conn.ops > n => {
                            Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
                        }
                        _ => Ok(1),
                    }
                }
            },
            4,
        )
        .unwrap();
        assert!(result.reconnects >= 1, "dead connections were replaced");
        assert!(
            result.reconnects <= 4,
            "the per-thread reconnect budget is honored"
        );
        assert_eq!(
            connects.load(Ordering::Relaxed),
            2 + result.reconnects,
            "each reconnect goes through the connect callback"
        );
        assert!(
            result.total_ops > 6,
            "ops continued past the first connection deaths"
        );
    }

    #[test]
    fn connect_failure_fails_the_run() {
        let result = drive_connections(
            2,
            1,
            Duration::from_millis(10),
            |idx| {
                if idx == 1 {
                    Err(io::Error::new(io::ErrorKind::ConnectionRefused, "nope"))
                } else {
                    Ok(FakeConn {
                        ops: 0,
                        fail_after: None,
                    })
                }
            },
            |_thread| |_conn: &mut FakeConn, _ordinal| Ok(()),
        );
        assert!(result.is_err());
    }
}
