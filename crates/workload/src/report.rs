//! Result series, CSV and markdown emission.

use std::io::Write as _;
use std::path::Path;

/// One line in a figure: a named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series label (e.g. `"RP"`, `"DDDS"`, `"rwlock"`).
    pub name: String,
    /// `(x, y)` points, typically `(reader threads, Mlookups/s)`.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value recorded for a given x, if any.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < f64::EPSILON)
            .map(|(_, y)| *y)
    }
}

/// A figure reproduction: a titled collection of series over a shared x
/// axis.
#[derive(Debug, Clone)]
pub struct Report {
    /// Figure title (matches the paper's figure caption).
    pub title: String,
    /// Label of the x axis (e.g. "reader threads").
    pub x_label: String,
    /// Label of the y axis (e.g. "lookups/second (millions)").
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Report {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// All distinct x values, sorted.
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x values"));
        xs.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON);
        xs
    }

    /// Renders the report as a markdown table (one row per x value, one
    /// column per series).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {} |", s.name));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        for x in self.x_values() {
            out.push_str(&format!("| {x} |"));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => out.push_str(&format!(" {y:.2} |")),
                    None => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
        out.push('\n');
        out
    }

    /// Renders the report as CSV (`x,<series...>` header then one row per x).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(' ', "_"));
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name.replace(' ', "_"));
        }
        out.push('\n');
        for x in self.x_values() {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => out.push_str(&format!(",{y:.4}")),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes `<stem>.csv` and `<stem>.md` into `dir` (creating it if
    /// needed) and returns the CSV path.
    pub fn write_files(&self, dir: &Path, stem: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let csv_path = dir.join(format!("{stem}.csv"));
        let mut csv = std::fs::File::create(&csv_path)?;
        csv.write_all(self.to_csv().as_bytes())?;
        let md_path = dir.join(format!("{stem}.md"));
        let mut md = std::fs::File::create(md_path)?;
        md.write_all(self.to_markdown().as_bytes())?;
        Ok(csv_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report::new("Figure X", "reader threads", "Mlookups/s");
        let mut rp = Series::new("RP");
        rp.push(1.0, 10.0);
        rp.push(2.0, 20.0);
        let mut rw = Series::new("rwlock");
        rw.push(1.0, 9.0);
        rw.push(2.0, 8.5);
        r.add_series(rp);
        r.add_series(rw);
        r
    }

    #[test]
    fn x_values_are_sorted_and_deduped() {
        let r = sample_report();
        assert_eq!(r.x_values(), vec![1.0, 2.0]);
    }

    #[test]
    fn markdown_contains_all_series_and_rows() {
        let md = sample_report().to_markdown();
        assert!(md.contains("| reader threads | RP | rwlock |"));
        assert!(md.contains("| 1 | 10.00 | 9.00 |"));
        assert!(md.contains("| 2 | 20.00 | 8.50 |"));
    }

    #[test]
    fn csv_round_trips_values() {
        let csv = sample_report().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("reader_threads,RP,rwlock"));
        assert_eq!(lines.next(), Some("1,10.0000,9.0000"));
        assert_eq!(lines.next(), Some("2,20.0000,8.5000"));
    }

    #[test]
    fn missing_points_render_as_blanks() {
        let mut r = Report::new("t", "x", "y");
        let mut a = Series::new("a");
        a.push(1.0, 1.0);
        let mut b = Series::new("b");
        b.push(2.0, 2.0);
        r.add_series(a);
        r.add_series(b);
        let md = r.to_markdown();
        assert!(md.contains("| 1 | 1.00 | — |"));
        assert!(md.contains("| 2 | — | 2.00 |"));
    }

    #[test]
    fn write_files_creates_csv_and_md() {
        let dir = std::env::temp_dir().join(format!("rp-report-test-{}", std::process::id()));
        let csv = sample_report().write_files(&dir, "fig_x").unwrap();
        assert!(csv.exists());
        assert!(dir.join("fig_x.md").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
