//! The multi-threaded measurement harness.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use crossbeam_utils::CachePadded;

use crate::latency::LatencyHistogram;

/// The result of one measurement run.
#[derive(Debug, Clone)]
pub struct MeasureResult {
    /// Total operations completed by all reader threads.
    pub total_ops: u64,
    /// Operations per reader thread (same order the threads were spawned).
    pub per_thread: Vec<u64>,
    /// Iterations completed by each background task.
    pub background_iterations: Vec<u64>,
    /// Wall-clock measurement time.
    pub elapsed: Duration,
}

impl MeasureResult {
    /// Aggregate throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64()
    }

    /// Aggregate throughput in millions of operations per second (the unit
    /// the paper's figures use).
    pub fn mops_per_sec(&self) -> f64 {
        self.ops_per_sec() / 1.0e6
    }

    /// Ratio between the fastest and slowest reader thread, as a fairness
    /// indicator (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let min = self.per_thread.iter().copied().min().unwrap_or(0).max(1);
        let max = self.per_thread.iter().copied().max().unwrap_or(0).max(1);
        max as f64 / min as f64
    }
}

/// Handle describing a background task to run alongside the readers (e.g. a
/// continuous resizer or an update thread).
pub struct BackgroundHandle<'a> {
    /// Human-readable label (reported in logs).
    pub name: &'static str,
    /// Body executed repeatedly until the measurement stops. The iteration
    /// counter passed in is the number of completed iterations so far.
    pub body: Box<dyn FnMut(u64) + Send + 'a>,
    /// Pause inserted between iterations (zero for a tight loop).
    pub pause: Duration,
}

impl<'a> BackgroundHandle<'a> {
    /// Creates a background task that runs `body` in a tight loop.
    pub fn new(name: &'static str, body: impl FnMut(u64) + Send + 'a) -> Self {
        BackgroundHandle {
            name,
            body: Box::new(body),
            pause: Duration::ZERO,
        }
    }

    /// Sets a pause between iterations.
    pub fn with_pause(mut self, pause: Duration) -> Self {
        self.pause = pause;
        self
    }
}

/// Runs a timed measurement.
///
/// Spawns `reader_threads` threads; each repeatedly invokes the closure
/// produced for it by `make_reader` (one invocation = one operation) until
/// `duration` has elapsed. `background` tasks run concurrently in their own
/// threads for the same window. All threads start together on a barrier, so
/// the measured window excludes setup cost.
///
/// The per-thread operation counters are cache-padded; the only shared
/// mutable state touched by readers on the measurement path is the stop
/// flag, which is read-only until the end of the run.
pub fn measure<'scope, F>(
    reader_threads: usize,
    duration: Duration,
    make_reader: impl Fn(usize) -> F,
    background: Vec<BackgroundHandle<'scope>>,
) -> MeasureResult
where
    F: FnMut() + Send + 'scope,
{
    assert!(reader_threads > 0, "need at least one reader thread");

    let stop = AtomicBool::new(false);
    let counters: Vec<CachePadded<AtomicU64>> = (0..reader_threads)
        .map(|_| CachePadded::new(AtomicU64::new(0)))
        .collect();
    let bg_counters: Vec<CachePadded<AtomicU64>> = (0..background.len())
        .map(|_| CachePadded::new(AtomicU64::new(0)))
        .collect();
    // Readers + background tasks + the timer (this thread).
    let barrier = Arc::new(Barrier::new(reader_threads + background.len() + 1));

    let mut readers: Vec<F> = (0..reader_threads).map(&make_reader).collect();

    let elapsed = std::thread::scope(|scope| {
        for (idx, reader) in readers.iter_mut().enumerate() {
            let stop = &stop;
            let counter = &counters[idx];
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                let mut local: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    reader();
                    local += 1;
                    // Publish in batches to keep the shared store rate low
                    // without losing more than a batch at the end.
                    if local.is_multiple_of(1024) {
                        counter.store(local, Ordering::Relaxed);
                    }
                }
                counter.store(local, Ordering::Relaxed);
            });
        }

        for (idx, task) in background.into_iter().enumerate() {
            let stop = &stop;
            let counter = &bg_counters[idx];
            let barrier = Arc::clone(&barrier);
            let BackgroundHandle {
                name: _name,
                mut body,
                pause,
            } = task;
            scope.spawn(move || {
                barrier.wait();
                let mut iterations: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    body(iterations);
                    iterations += 1;
                    counter.store(iterations, Ordering::Relaxed);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            });
        }

        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::SeqCst);
        let elapsed = start.elapsed();
        // Leaving the scope joins every thread.
        elapsed
    });

    let per_thread: Vec<u64> = counters.iter().map(|c| c.load(Ordering::SeqCst)).collect();
    let background_iterations: Vec<u64> = bg_counters
        .iter()
        .map(|c| c.load(Ordering::SeqCst))
        .collect();
    MeasureResult {
        total_ops: per_thread.iter().sum(),
        per_thread,
        background_iterations,
        elapsed,
    }
}

/// Runs a timed measurement whose per-thread operation closures are created
/// **on their worker threads**, with per-operation latency sampling.
///
/// [`measure`] calls its factory on the driving thread and moves the
/// closures into the workers, which requires them to be `Send`. Read-side
/// state that is pinned to its thread — an `rp_hash::QsbrReadHandle`, whose
/// whole design is that the owning thread announces its own quiescent
/// states — cannot be built that way. Here the factory itself is shared
/// (`Sync`) and invoked from inside each spawned thread, so the closure may
/// own `!Send` state; it never leaves its thread.
///
/// Every `sample_every`-th operation is timed and recorded into a
/// per-thread [`LatencyHistogram`]; the histograms are merged after the run
/// (sampling keeps the `Instant::now` overhead off the other operations, so
/// throughput numbers stay honest). Use `sample_every = 1` to time every
/// operation.
pub fn measure_thread_local<F>(
    reader_threads: usize,
    duration: Duration,
    sample_every: u64,
    make_reader: impl Fn(usize) -> F + Sync,
    background: Vec<BackgroundHandle<'_>>,
) -> (MeasureResult, LatencyHistogram)
where
    F: FnMut(),
{
    assert!(reader_threads > 0, "need at least one reader thread");
    let sample_every = sample_every.max(1);

    let stop = AtomicBool::new(false);
    let bg_counters: Vec<CachePadded<AtomicU64>> = (0..background.len())
        .map(|_| CachePadded::new(AtomicU64::new(0)))
        .collect();
    let barrier = Arc::new(Barrier::new(reader_threads + background.len() + 1));
    let make_reader = &make_reader;

    let (elapsed, per_thread, merged) = std::thread::scope(|scope| {
        let mut readers = Vec::with_capacity(reader_threads);
        for idx in 0..reader_threads {
            let stop = &stop;
            let barrier = Arc::clone(&barrier);
            readers.push(scope.spawn(move || {
                // Created here, on the worker thread: the closure may own
                // thread-pinned (!Send) read-side state.
                let mut reader = make_reader(idx);
                let mut hist = LatencyHistogram::new();
                barrier.wait();
                let mut local: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    if local.is_multiple_of(sample_every) {
                        let started = Instant::now();
                        reader();
                        hist.record(started.elapsed());
                    } else {
                        reader();
                    }
                    local += 1;
                }
                (local, hist)
            }));
        }

        for (idx, task) in background.into_iter().enumerate() {
            let stop = &stop;
            let counter = &bg_counters[idx];
            let barrier = Arc::clone(&barrier);
            let BackgroundHandle {
                name: _name,
                mut body,
                pause,
            } = task;
            scope.spawn(move || {
                barrier.wait();
                let mut iterations: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    body(iterations);
                    iterations += 1;
                    counter.store(iterations, Ordering::Relaxed);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            });
        }

        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::SeqCst);
        let elapsed = start.elapsed();

        let mut per_thread = Vec::with_capacity(reader_threads);
        let mut merged = LatencyHistogram::new();
        for handle in readers {
            let (ops, hist) = handle.join().expect("reader thread panicked");
            per_thread.push(ops);
            merged.merge(&hist);
        }
        (elapsed, per_thread, merged)
    });

    let background_iterations: Vec<u64> = bg_counters
        .iter()
        .map(|c| c.load(Ordering::SeqCst))
        .collect();
    (
        MeasureResult {
            total_ops: per_thread.iter().sum(),
            per_thread,
            background_iterations,
            elapsed,
        },
        merged,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn counts_operations_from_all_threads() {
        let result = measure(
            4,
            Duration::from_millis(50),
            |_| || std::hint::spin_loop(),
            Vec::new(),
        );
        assert_eq!(result.per_thread.len(), 4);
        assert!(result.total_ops > 0);
        assert!(result.ops_per_sec() > 0.0);
        assert!(result.elapsed >= Duration::from_millis(50));
    }

    #[test]
    fn background_task_runs_alongside_readers() {
        let resizes = AtomicUsize::new(0);
        let result = measure(
            2,
            Duration::from_millis(50),
            |_| || std::hint::spin_loop(),
            vec![BackgroundHandle::new("toggler", |_| {
                resizes.fetch_add(1, Ordering::Relaxed);
            })
            .with_pause(Duration::from_millis(5))],
        );
        assert_eq!(result.background_iterations.len(), 1);
        assert!(result.background_iterations[0] > 0);
        assert!(resizes.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn reader_closures_receive_their_index() {
        let seen = [AtomicUsize::new(0), AtomicUsize::new(0)];
        let seen_ref = &seen;
        measure(
            2,
            Duration::from_millis(20),
            |idx| {
                move || {
                    seen_ref[idx].store(idx + 1, Ordering::Relaxed);
                }
            },
            Vec::new(),
        );
        assert_eq!(seen[0].load(Ordering::Relaxed), 1);
        assert_eq!(seen[1].load(Ordering::Relaxed), 2);
    }

    #[test]
    fn thread_local_factory_runs_on_worker_threads_and_samples_latency() {
        use std::collections::HashSet;
        use std::sync::Mutex;

        let spawn_threads = Mutex::new(HashSet::new());
        let driver_thread = std::thread::current().id();
        let (result, hist) = measure_thread_local(
            3,
            Duration::from_millis(40),
            4,
            |idx| {
                // Factory runs on the worker thread itself; a !Send value
                // can live inside the closure.
                let not_send = std::rc::Rc::new(idx);
                spawn_threads
                    .lock()
                    .unwrap()
                    .insert(std::thread::current().id());
                move || {
                    std::hint::black_box(*not_send);
                }
            },
            Vec::new(),
        );
        let threads = spawn_threads.lock().unwrap();
        assert_eq!(threads.len(), 3, "one factory call per worker thread");
        assert!(!threads.contains(&driver_thread));
        assert_eq!(result.per_thread.len(), 3);
        assert!(result.total_ops > 0);
        assert!(hist.count() > 0, "sampled latencies recorded");
        assert!(hist.count() <= result.total_ops);
    }

    #[test]
    fn mops_conversion_is_consistent() {
        let r = MeasureResult {
            total_ops: 2_000_000,
            per_thread: vec![1_000_000, 1_000_000],
            background_iterations: vec![],
            elapsed: Duration::from_secs(1),
        };
        assert!((r.mops_per_sec() - 2.0).abs() < 1e-9);
        assert!((r.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one reader")]
    fn zero_readers_panics() {
        let _ = measure(0, Duration::from_millis(1), |_| || (), Vec::new());
    }
}
