//! A reusable rcutorture-style stress harness for the workspace's
//! concurrent maps.
//!
//! Modeled on the kernel's rcutorture: a population of readers in steady
//! read-side activity, writers continuously replacing tagged values, and
//! the structure resizing under everyone the whole time. The harness is
//! generic over [`TortureMap`] (any [`ConcurrentMap`] that also exposes
//! the witness-based borrowed read path), so the exact same storm runs
//! against the relativistic table, the sharded table, and the
//! split-ordered list. The assertions are the RCU contract itself:
//!
//! * **No freed or torn value is ever observed** — every [`Payload`]
//!   carries a checksum over its key and generation; a use-after-free or
//!   torn read fails the checksum (or crashes, which the test also counts
//!   as a failure).
//! * **No key is ever absent mid-move** — every *stable* key is inserted
//!   once before the storm and only ever replaced, so a reader must find
//!   it in every lookup, at some generation (old or new), no matter how
//!   many resize splices are in flight.
//! * **The storm is not vacuous** — the resizer must observe the bucket
//!   count actually change at least once, or the run tested nothing.
//!
//! Duration is controlled by `RP_TORTURE_SECS` (default 2 — fast enough
//! for tier-1; CI runs a longer mode explicitly).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use rp_baselines::ConcurrentMap;
use rp_hash::{QsbrReadHandle, RpHashMap};
use rp_rcu::RcuGuard;
use rp_shard::ShardedRpMap;
use rp_splitorder::SplitOrderMap;

const MAGIC: u64 = 0x9E37_79B9_7F4A_7C15;

/// A checksummed value: any torn, stale-beyond-reclamation, or freed read
/// trips [`Payload::verify`].
#[derive(Clone, Debug)]
pub struct Payload {
    /// The key this payload was stored under.
    pub key: u64,
    /// The generation (write sequence number) that produced it.
    pub gen: u64,
    check: u64,
}

impl Payload {
    /// Builds a payload for `key` at generation `gen`.
    pub fn new(key: u64, gen: u64) -> Payload {
        Payload {
            key,
            gen,
            check: key ^ gen.rotate_left(17) ^ MAGIC,
        }
    }

    /// Panics if the payload is not a valid payload for `expected_key`.
    pub fn verify(&self, expected_key: u64) {
        assert_eq!(
            self.key, expected_key,
            "reader observed a payload for the wrong key (chain corruption)"
        );
        assert_eq!(
            self.check,
            self.key ^ self.gen.rotate_left(17) ^ MAGIC,
            "reader observed a torn or freed payload (key {}, gen {})",
            self.key,
            self.gen
        );
    }
}

/// Storm duration: `RP_TORTURE_SECS` seconds (default 2, floor 0.1).
pub fn torture_duration() -> Duration {
    let secs: f64 = std::env::var("RP_TORTURE_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    Duration::from_secs_f64(secs.max(0.1))
}

/// What a map must expose beyond [`ConcurrentMap`] for the torture storm:
/// the borrowed read path under both witness flavors, an explicit resize
/// step for the churn thread, and the post-storm structural checks.
pub trait TortureMap: ConcurrentMap<u64, Payload> {
    /// Barrier-free borrowed lookup through a QSBR handle.
    fn lookup_qsbr<'g>(&'g self, key: &u64, handle: &'g QsbrReadHandle) -> Option<&'g Payload>;

    /// Enters an EBR read-side critical section.
    fn pin_read(&self) -> RcuGuard<'static>;

    /// Borrowed lookup under an EBR guard from [`TortureMap::pin_read`].
    fn lookup_pinned<'g>(&'g self, key: &u64, guard: &'g RcuGuard<'static>) -> Option<&'g Payload>;

    /// One step of explicit resize churn (alternate between a large and a
    /// small target so transitions keep happening in both directions).
    fn resize_step(&self, round: u64);

    /// Structural invariant check, run after the storm quiesces.
    fn check_invariants(&self) -> Result<(), String>;

    /// Drains deferred reclamation after the storm.
    fn flush_retired(&self);
}

impl<S> TortureMap for RpHashMap<u64, Payload, S>
where
    S: std::hash::BuildHasher + Send + Sync,
{
    fn lookup_qsbr<'g>(&'g self, key: &u64, handle: &'g QsbrReadHandle) -> Option<&'g Payload> {
        self.get(key, handle)
    }

    fn pin_read(&self) -> RcuGuard<'static> {
        self.pin()
    }

    fn lookup_pinned<'g>(&'g self, key: &u64, guard: &'g RcuGuard<'static>) -> Option<&'g Payload> {
        self.get(key, guard)
    }

    fn resize_step(&self, round: u64) {
        RpHashMap::resize_to(self, if round.is_multiple_of(2) { 512 } else { 64 });
    }

    fn check_invariants(&self) -> Result<(), String> {
        RpHashMap::check_invariants(self)
    }

    fn flush_retired(&self) {
        RpHashMap::flush_retired(self);
    }
}

impl<S> TortureMap for ShardedRpMap<u64, Payload, S>
where
    S: std::hash::BuildHasher + Send + Sync,
{
    fn lookup_qsbr<'g>(&'g self, key: &u64, handle: &'g QsbrReadHandle) -> Option<&'g Payload> {
        self.get_qsbr(key, handle)
    }

    fn pin_read(&self) -> RcuGuard<'static> {
        self.pin()
    }

    fn lookup_pinned<'g>(&'g self, key: &u64, guard: &'g RcuGuard<'static>) -> Option<&'g Payload> {
        self.get(key, guard)
    }

    fn resize_step(&self, round: u64) {
        // Resize one shard at a time so inline zip/unzip races any
        // maintenance-thread resizes the map may also be running.
        let shard = self.shard((round as usize) % self.shard_count());
        shard.resize_to(if round.is_multiple_of(2) { 128 } else { 32 });
    }

    fn check_invariants(&self) -> Result<(), String> {
        ShardedRpMap::check_invariants(self)
    }

    fn flush_retired(&self) {
        ShardedRpMap::flush_retired(self);
    }
}

impl<S> TortureMap for SplitOrderMap<u64, Payload, S>
where
    S: std::hash::BuildHasher + Send + Sync,
{
    fn lookup_qsbr<'g>(&'g self, key: &u64, handle: &'g QsbrReadHandle) -> Option<&'g Payload> {
        self.get(key, handle)
    }

    fn pin_read(&self) -> RcuGuard<'static> {
        self.pin()
    }

    fn lookup_pinned<'g>(&'g self, key: &u64, guard: &'g RcuGuard<'static>) -> Option<&'g Payload> {
        self.get(key, guard)
    }

    fn resize_step(&self, round: u64) {
        SplitOrderMap::resize_to(self, if round.is_multiple_of(2) { 1024 } else { 128 });
    }

    fn check_invariants(&self) -> Result<(), String> {
        SplitOrderMap::check_invariants(self)
    }

    fn flush_retired(&self) {
        SplitOrderMap::flush_retired(self);
    }
}

/// Storm shape. [`TortureConfig::default`] matches the original
/// rcutorture-style test: 512 stable keys, 3 QSBR readers plus one EBR
/// reader, 2 writers, 2048 volatile keys per writer, duration from
/// `RP_TORTURE_SECS`.
pub struct TortureConfig {
    /// Keys inserted before the storm and only ever replaced — readers
    /// must find every one of them on every lookup.
    pub stable_keys: u64,
    /// Barrier-free readers announcing quiescent states between batches.
    pub qsbr_readers: usize,
    /// Writer threads replacing stable keys and churning volatile blocks.
    pub writers: usize,
    /// Volatile keys each writer inserts and removes per cycle — sized to
    /// push auto-resize thresholds in both directions.
    pub volatile_per_writer: u64,
    /// Wall-clock storm length.
    pub duration: Duration,
}

impl Default for TortureConfig {
    fn default() -> TortureConfig {
        TortureConfig {
            stable_keys: 512,
            qsbr_readers: 3,
            writers: 2,
            volatile_per_writer: 2048,
            duration: torture_duration(),
        }
    }
}

/// What the storm measured (the correctness assertions have already run —
/// a completed return means the map passed).
pub struct TortureOutcome {
    /// Times the resizer thread observed the bucket count change.
    pub resize_transitions: u64,
    /// Highest write generation issued.
    pub generations_issued: u64,
}

/// A simple xorshift so reader key choice is cheap and deterministic per
/// seed.
fn next_rand(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Runs the full rcutorture-style storm against `map` and panics on any
/// contract violation: torn/freed reads, stable keys absent mid-resize,
/// post-storm invariant failures, or a vacuous run (no resize transition
/// ever observed).
pub fn torture_storm<M: TortureMap>(map: &M, config: &TortureConfig) -> TortureOutcome {
    let gen_counter = AtomicU64::new(1);
    for key in 0..config.stable_keys {
        map.insert(key, Payload::new(key, 0));
    }

    let stop = AtomicBool::new(false);
    let transitions = AtomicU64::new(0);
    let deadline = Instant::now() + config.duration;
    let stable_keys = config.stable_keys;

    std::thread::scope(|s| {
        // QSBR readers: steady barrier-free lookups, quiescent once per
        // "batch", periodically offline (a parked worker), periodically
        // holding several references across lookups (a pipelined batch).
        for seed in 0..config.qsbr_readers as u64 {
            let (stop, map) = (&stop, map);
            s.spawn(move || {
                let mut handle = QsbrReadHandle::register();
                let mut rng = 0xDEAD_BEEF ^ (seed + 1);
                let mut ops = 0_u64;
                while !stop.load(Ordering::Relaxed) {
                    if ops % 32 == 31 {
                        // Hold a window of references open across several
                        // lookups before verifying them all — the borrows
                        // keep `handle` pinned (no quiescent state can be
                        // announced), so all eight must stay valid.
                        let keys: Vec<u64> =
                            (0..8).map(|_| next_rand(&mut rng) % stable_keys).collect();
                        let held: Vec<(u64, &Payload)> = keys
                            .iter()
                            .map(|&k| {
                                (
                                    k,
                                    map.lookup_qsbr(&k, &handle)
                                        .expect("stable key absent mid-move"),
                                )
                            })
                            .collect();
                        for (k, payload) in held {
                            payload.verify(k);
                        }
                    } else {
                        let k = next_rand(&mut rng) % stable_keys;
                        map.lookup_qsbr(&k, &handle)
                            .expect("stable key absent mid-move")
                            .verify(k);
                    }
                    ops += 1;
                    if ops.is_multiple_of(128) {
                        handle.quiescent_state();
                    }
                    if ops.is_multiple_of(8192) {
                        // A parked worker: offline while "blocked".
                        handle.offline_scope(std::thread::yield_now);
                    }
                }
            });
        }

        // One EBR reader alongside: grace periods must cover both flavors
        // at once.
        {
            let (stop, map) = (&stop, map);
            s.spawn(move || {
                let mut rng = 0xFEED_F00D_u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = next_rand(&mut rng) % stable_keys;
                    let guard = map.pin_read();
                    map.lookup_pinned(&k, &guard)
                        .expect("stable key absent mid-move (EBR)")
                        .verify(k);
                }
            });
        }

        // Writers: continuously replace stable keys at fresh generations
        // and churn a volatile block up (crossing expand thresholds) and
        // back down (crossing shrink thresholds), so auto-resizes cycle
        // for the whole run.
        for w in 0..config.writers as u64 {
            let (stop, map, gen_counter) = (&stop, map, &gen_counter);
            let writers = config.writers as u64;
            let volatile_per_writer = config.volatile_per_writer;
            s.spawn(move || {
                let volatile_base = (1 << 32) + w * volatile_per_writer;
                while !stop.load(Ordering::Relaxed) {
                    for key in (w..stable_keys).step_by(writers as usize) {
                        let gen = gen_counter.fetch_add(1, Ordering::Relaxed);
                        map.insert(key, Payload::new(key, gen));
                    }
                    for i in 0..volatile_per_writer {
                        map.insert(volatile_base + i, Payload::new(volatile_base + i, 0));
                    }
                    for i in 0..volatile_per_writer {
                        map.remove(&(volatile_base + i));
                    }
                }
            });
        }

        // An explicit resize cycler races the readers (and any background
        // maintenance resizes); it also counts observed bucket-count
        // transitions so a vacuous storm fails loudly.
        {
            let (stop, map, transitions) = (&stop, map, &transitions);
            s.spawn(move || {
                let mut round = 0_u64;
                let mut last = map.num_buckets();
                while !stop.load(Ordering::Relaxed) {
                    map.resize_step(round);
                    let now = map.num_buckets();
                    if now != last {
                        transitions.fetch_add(1, Ordering::Relaxed);
                        last = now;
                    }
                    round += 1;
                }
            });
        }

        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        stop.store(true, Ordering::SeqCst);
    });

    // Quiesced: every stable key still present at some valid generation.
    let ceiling = gen_counter.load(Ordering::SeqCst);
    let mut handle = QsbrReadHandle::register();
    for key in 0..config.stable_keys {
        let payload = map
            .lookup_qsbr(&key, &handle)
            .expect("stable key lost after the storm");
        payload.verify(key);
        assert!(
            payload.gen < ceiling,
            "generation {} was never issued (ceiling {ceiling})",
            payload.gen
        );
    }
    handle.quiescent_state();
    drop(handle);

    let resize_transitions = transitions.load(Ordering::SeqCst);
    assert!(
        resize_transitions >= 1,
        "the storm never completed a resize — the torture tested nothing"
    );
    map.check_invariants().unwrap();
    map.flush_retired();

    TortureOutcome {
        resize_transitions,
        generations_issued: ceiling,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_checksum_catches_corruption() {
        let good = Payload::new(3, 9);
        good.verify(3);
        let torn = Payload {
            gen: 10,
            ..good.clone()
        };
        assert!(std::panic::catch_unwind(|| torn.verify(3)).is_err());
        assert!(std::panic::catch_unwind(|| good.verify(4)).is_err());
    }

    #[test]
    fn a_tiny_storm_passes_on_the_plain_map() {
        let map: RpHashMap<u64, Payload> = RpHashMap::with_buckets(64);
        let config = TortureConfig {
            stable_keys: 64,
            qsbr_readers: 1,
            writers: 1,
            volatile_per_writer: 256,
            duration: Duration::from_millis(200),
        };
        let outcome = torture_storm(&map, &config);
        assert!(outcome.resize_transitions >= 1);
        assert!(outcome.generations_issued > 1);
    }
}
