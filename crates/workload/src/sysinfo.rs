//! Host information recorded alongside benchmark results.

/// A description of the machine a benchmark ran on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// Number of logical CPUs the process may use.
    pub logical_cpus: usize,
    /// Operating system (compile-time constant).
    pub os: &'static str,
    /// Architecture (compile-time constant).
    pub arch: &'static str,
}

impl HostInfo {
    /// Collects information about the current host.
    pub fn collect() -> Self {
        HostInfo {
            logical_cpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            os: std::env::consts::OS,
            arch: std::env::consts::ARCH,
        }
    }

    /// The thread counts the scalability figures should sweep on this host:
    /// the paper's 1–16 ladder, truncated to the available CPUs (always at
    /// least `[1]`, and always including the full CPU count).
    pub fn thread_ladder(&self, max: usize) -> Vec<usize> {
        let cap = self.logical_cpus.min(max).max(1);
        let mut ladder: Vec<usize> = [1, 2, 4, 8, 16, 32]
            .iter()
            .copied()
            .filter(|&t| t <= cap)
            .collect();
        if !ladder.contains(&cap) {
            ladder.push(cap);
        }
        ladder
    }

    /// A thread ladder that may exceed the CPU count (`1, 2, 4, ... max`).
    ///
    /// Useful for *write* workloads: writers blocked on a contended lock
    /// yield the CPU, so running more writer threads than cores is exactly
    /// the regime where lock granularity (one writer mutex versus
    /// shard-local mutexes) shows up.
    pub fn oversubscribed_ladder(&self, max: usize) -> Vec<usize> {
        let cap = max.max(1);
        let mut ladder: Vec<usize> = [1, 2, 4, 8, 16, 32, 64]
            .iter()
            .copied()
            .filter(|&t| t <= cap)
            .collect();
        if !ladder.contains(&cap) {
            ladder.push(cap);
        }
        ladder
    }
}

impl std::fmt::Display for HostInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} with {} logical CPUs",
            self.os, self.arch, self.logical_cpus
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_reports_at_least_one_cpu() {
        let info = HostInfo::collect();
        assert!(info.logical_cpus >= 1);
        assert!(!info.to_string().is_empty());
    }

    #[test]
    fn thread_ladder_is_monotone_and_capped() {
        let info = HostInfo {
            logical_cpus: 12,
            os: "linux",
            arch: "x86_64",
        };
        let ladder = info.thread_ladder(16);
        assert_eq!(ladder, vec![1, 2, 4, 8, 12]);
        let small = HostInfo {
            logical_cpus: 1,
            os: "linux",
            arch: "x86_64",
        };
        assert_eq!(small.thread_ladder(16), vec![1]);
        let big = HostInfo {
            logical_cpus: 64,
            os: "linux",
            arch: "x86_64",
        };
        assert_eq!(big.thread_ladder(16), vec![1, 2, 4, 8, 16]);
    }
}
