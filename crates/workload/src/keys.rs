//! Key-space generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// The distribution keys are drawn from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key in the key space is equally likely (the paper's
    /// microbenchmark workload).
    Uniform,
    /// Zipf-distributed popularity with the given exponent (cache-like
    /// workloads; used by the memcached harness).
    Zipf(f64),
    /// Keys are generated in a round-robin sequence (useful for building the
    /// initial table contents deterministically).
    Sequential,
}

/// A deterministic, seedable key generator over `0..keyspace`.
#[derive(Debug, Clone)]
pub struct KeyGen {
    dist: KeyDist,
    keyspace: u64,
    rng: StdRng,
    zipf: Option<Zipf>,
    next_seq: u64,
}

impl KeyGen {
    /// Creates a generator over `0..keyspace` with the given distribution
    /// and seed.
    ///
    /// # Panics
    ///
    /// Panics if `keyspace == 0`.
    pub fn new(dist: KeyDist, keyspace: u64, seed: u64) -> Self {
        assert!(keyspace > 0, "key space must be non-empty");
        let zipf = match dist {
            KeyDist::Zipf(s) => Some(Zipf::new(keyspace as usize, s)),
            _ => None,
        };
        KeyGen {
            dist,
            keyspace,
            rng: StdRng::seed_from_u64(seed),
            zipf,
            next_seq: 0,
        }
    }

    /// The size of the key space.
    pub fn keyspace(&self) -> u64 {
        self.keyspace
    }

    /// Draws the next key.
    pub fn next_key(&mut self) -> u64 {
        match self.dist {
            KeyDist::Uniform => self.rng.gen_range(0..self.keyspace),
            KeyDist::Zipf(_) => self
                .zipf
                .as_ref()
                .expect("zipf table built in new()")
                .sample(&mut self.rng) as u64,
            KeyDist::Sequential => {
                let k = self.next_seq;
                self.next_seq = (self.next_seq + 1) % self.keyspace;
                k
            }
        }
    }

    /// Draws a key that is guaranteed *not* to be in `0..keyspace` (for
    /// lookup-miss workloads).
    pub fn next_missing_key(&mut self) -> u64 {
        self.keyspace + self.next_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_wraps_around() {
        let mut g = KeyGen::new(KeyDist::Sequential, 3, 0);
        let keys: Vec<u64> = (0..7).map(|_| g.next_key()).collect();
        assert_eq!(keys, [0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let mut a = KeyGen::new(KeyDist::Uniform, 1000, 7);
        let mut b = KeyGen::new(KeyDist::Uniform, 1000, 7);
        let ka: Vec<u64> = (0..100).map(|_| a.next_key()).collect();
        let kb: Vec<u64> = (0..100).map(|_| b.next_key()).collect();
        assert_eq!(ka, kb);
        assert!(ka.iter().all(|&k| k < 1000));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = KeyGen::new(KeyDist::Uniform, 1_000_000, 1);
        let mut b = KeyGen::new(KeyDist::Uniform, 1_000_000, 2);
        let ka: Vec<u64> = (0..50).map(|_| a.next_key()).collect();
        let kb: Vec<u64> = (0..50).map(|_| b.next_key()).collect();
        assert_ne!(ka, kb);
    }

    #[test]
    fn zipf_keys_stay_in_range() {
        let mut g = KeyGen::new(KeyDist::Zipf(0.99), 128, 3);
        for _ in 0..1000 {
            assert!(g.next_key() < 128);
        }
    }

    #[test]
    fn missing_keys_are_outside_the_keyspace() {
        let mut g = KeyGen::new(KeyDist::Uniform, 64, 3);
        for _ in 0..100 {
            assert!(g.next_missing_key() >= 64);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_keyspace_panics() {
        let _ = KeyGen::new(KeyDist::Uniform, 0, 0);
    }
}
