//! Zipf-distributed sampling.

use rand::Rng;

/// A Zipf distribution over `1..=n` with exponent `s`, sampled by inverting
/// a precomputed CDF.
///
/// Key popularity in caches (the memcached experiment's natural workload) is
/// approximately Zipfian; the microbenchmark figures use uniform keys, and
/// the memcached harness can use either.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `n` items with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf distribution needs at least one item");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in weights.iter_mut() {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating-point shortfall in the last bucket.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the distribution is over a single item.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples an index in `0..n` (0-based; index 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // Find the first CDF entry >= u.
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_monotone_and_complete() {
        let z = Zipf::new(100, 0.99);
        assert_eq!(z.len(), 100);
        let mut prev = 0.0;
        for &p in &z.cdf {
            assert!(p >= prev);
            prev = p;
        }
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn samples_stay_in_range_and_skew_low() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut low = 0_usize;
        for _ in 0..10_000 {
            let s = z.sample(&mut rng);
            assert!(s < 1000);
            if s < 10 {
                low += 1;
            }
        }
        // With s=1.0 the top-10 items carry roughly 39% of the mass; allow a
        // generous band.
        assert!(low > 2500, "only {low} of 10000 samples hit the top 10");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0_u32; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((1600..=2400).contains(&c), "counts not uniform: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
