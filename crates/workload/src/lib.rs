//! Workload generation and throughput measurement for the relativist
//! benchmarks.
//!
//! The paper's microbenchmark (a Linux kernel module called `rcuhashbash`)
//! spawns a configurable number of reader threads that perform hash-table
//! lookups for a fixed duration, optionally while a resizer thread resizes
//! the table continuously, and reports lookups per second. This crate is the
//! userspace equivalent:
//!
//! * [`keys`] — key-space generators (uniform, Zipfian, sequential).
//! * [`driver`] — the measurement harness: spawns reader threads with
//!   cache-padded per-thread counters, optional background threads (writers,
//!   resizers), runs for a fixed duration and aggregates throughput.
//! * [`latency`] — a fixed-size log-linear histogram for per-operation
//!   latency percentiles (used by the `fig_maint` resize-latency figure).
//! * [`netdriver`] — a multi-connection *client* driver: N connections
//!   shared across M driver threads with per-request latency recording,
//!   in closed-loop ([`drive_connections`]) or pipelining
//!   ([`drive_connections_windowed`] — batch N requests per write,
//!   window-based latency accounting) form; used by `fig_server` and
//!   `fig_hotpath` to benchmark the cache servers.
//! * [`alloc`] — an installable counting global allocator with per-thread
//!   tagged counters, the objective instrument behind `fig_hotpath`'s
//!   allocations-per-operation gate.
//! * [`report`] — turns measured series into CSV and markdown tables so the
//!   benchmark binaries can print exactly the rows the paper's figures plot.
//! * [`sysinfo`] — records the host configuration alongside results.
//! * [`torture`] — a reusable rcutorture-style stress harness: checksummed
//!   payloads, QSBR + EBR reader populations, generation-tagged writers and
//!   a resize cycler, generic over every resizable map in the workspace.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod driver;
pub mod keys;
pub mod latency;
pub mod netdriver;
pub mod report;
pub mod sysinfo;
pub mod torture;
mod zipf;

pub use driver::{measure, measure_thread_local, BackgroundHandle, MeasureResult};
pub use keys::{KeyDist, KeyGen};
pub use latency::LatencyHistogram;
pub use netdriver::{
    drive_connections, drive_connections_reconnecting, drive_connections_windowed, NetDriveResult,
};
pub use report::{Report, Series};
pub use zipf::Zipf;
