//! A small fixed-size log-linear latency histogram (HdrHistogram-style),
//! used by the latency-oriented benchmarks (`fig_maint`) to report
//! percentiles without allocating per sample.
//!
//! Values are nanoseconds. Each power-of-two octave is split into 16 linear
//! sub-buckets, giving ≲ 6.25% relative error across the full `u64` range —
//! plenty for comparing p99s that differ by orders of magnitude.

use std::time::Duration;

/// Sub-buckets per octave (16 → log-linear with 4 mantissa bits).
const MINOR_BITS: u32 = 4;
const MINORS: usize = 1 << MINOR_BITS;
/// Values below `MINORS` get exact buckets `0..MINORS`; everything above is
/// log-linear: one group of `MINORS` buckets per octave `4..=63`.
const BUCKETS: usize = MINORS + (64 - MINOR_BITS as usize) * MINORS;

/// A mergeable latency histogram with bounded (≈6%) relative error.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(ns: u64) -> usize {
    if ns < MINORS as u64 {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros();
    let shift = msb - MINOR_BITS;
    let minor = ((ns >> shift) & (MINORS as u64 - 1)) as usize;
    MINORS + (shift as usize) * MINORS + minor
}

/// Upper bound (inclusive) of the value range bucket `index` covers.
fn bucket_upper(index: usize) -> u64 {
    if index < MINORS {
        return index as u64;
    }
    let shift = ((index - MINORS) / MINORS) as u32;
    let minor = ((index - MINORS) % MINORS) as u128;
    // The top octave's upper bound exceeds u64; saturate.
    let upper = ((MINORS as u128 + minor + 1) << shift) - 1;
    u64::try_from(upper).unwrap_or(u64::MAX)
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            max_ns: 0,
        }
    }

    /// Records one sample, in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records one sample from a [`Duration`] (saturating at `u64::MAX`
    /// nanoseconds, i.e. ~584 years).
    pub fn record(&mut self, elapsed: Duration) {
        self.record_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records the same sample `count` times — window-based accounting for
    /// pipelined drivers, where every request in a window observes (to
    /// within the batch) the window's round-trip time.
    pub fn record_many(&mut self, elapsed: Duration, count: u64) {
        if count == 0 {
            return;
        }
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.counts[bucket_of(ns)] += count;
        self.total += count;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram into this one (for per-thread histograms).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The largest recorded sample, exactly.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The value at or below which `quantile` (in `[0, 1]`) of the samples
    /// fall, reported as the upper bound of the containing bucket (within
    /// ≈6% of the true value). Returns 0 for an empty histogram.
    pub fn percentile_ns(&self, quantile: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((quantile.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0_u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // The exact max is a tighter bound for the last bucket.
                return bucket_upper(index).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// [`LatencyHistogram::percentile_ns`] in (fractional) microseconds.
    pub fn percentile_us(&self, quantile: f64) -> f64 {
        self.percentile_ns(quantile) as f64 / 1_000.0
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50_ns", &self.percentile_ns(0.50))
            .field("p99_ns", &self.percentile_ns(0.99))
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_and_cover_u64() {
        let mut last = 0;
        for index in 1..BUCKETS {
            let upper = bucket_upper(index);
            assert!(upper > last, "bucket {index} not monotonic");
            last = upper;
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every value maps to a bucket whose range contains it.
        for ns in [1_u64, 15, 16, 17, 100, 999, 1_000_000, u64::MAX / 3] {
            let b = bucket_of(ns);
            assert!(ns <= bucket_upper(b), "{ns} above its bucket upper bound");
            if b > 0 {
                assert!(ns > bucket_upper(b - 1), "{ns} not above previous bucket");
            }
        }
    }

    #[test]
    fn percentiles_are_within_relative_error() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=10_000_u64 {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.percentile_ns(0.50) as f64;
        let p99 = h.percentile_ns(0.99) as f64;
        assert!((p50 / 5_000.0 - 1.0).abs() < 0.07, "p50 = {p50}");
        assert!((p99 / 9_900.0 - 1.0).abs() < 0.07, "p99 = {p99}");
        assert_eq!(h.percentile_ns(1.0), 10_000);
        assert_eq!(h.max_ns(), 10_000);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for _ in 0..9 {
            h.record_ns(3);
        }
        h.record_ns(7);
        assert_eq!(h.percentile_ns(0.5), 3);
        assert_eq!(h.percentile_ns(1.0), 7);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_ns(100);
        b.record_ns(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.percentile_ns(1.0) >= 1_000_000 - 1);
        assert!(a.percentile_ns(0.25) <= 103);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_ns(0.99), 0);
    }

    #[test]
    fn record_duration_converts_to_ns() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(5));
        assert!(h.percentile_ns(1.0) >= 5_000);
        assert!(h.percentile_us(1.0) >= 5.0);
    }
}
