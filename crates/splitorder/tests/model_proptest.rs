//! Property-based model tests for the split-ordered map, mirroring
//! `crates/hash/tests/model_proptest.rs`: arbitrary operation sequences are
//! checked against a `BTreeMap` reference, resizes interleaved anywhere,
//! plus the split-order specials — bucket-split boundary cases driven by an
//! identity hasher (so bucket placement is exact) and dummy-node insertion
//! races from threads that force concurrent lazy bucket initialization.

use std::collections::BTreeMap;
use std::hash::{BuildHasher, Hasher};

use proptest::prelude::*;

use rp_splitorder::SplitOrderMap;

/// One step of a generated workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Lookup(u16),
    ResizeTo(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        4 => any::<u16>().prop_map(Op::Remove),
        8 => any::<u16>().prop_map(Op::Lookup),
        2 => (1_u16..512).prop_map(Op::ResizeTo),
    ]
}

/// Hashes an integer to itself, so `hash & (size - 1)` is the literal low
/// bits of the key — bucket placement and split boundaries become exact.
#[derive(Clone, Copy, Default)]
struct IdentityBuild;

struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 << 8) | u64::from(b);
        }
    }
    fn write_u16(&mut self, v: u16) {
        self.0 = u64::from(v);
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

impl BuildHasher for IdentityBuild {
    type Hasher = IdentityHasher;
    fn build_hasher(&self) -> IdentityHasher {
        IdentityHasher(0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn behaves_like_btreemap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let map: SplitOrderMap<u16, u32> = SplitOrderMap::with_buckets(2);
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();

        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let newly = map.insert(k, v);
                    let model_newly = model.insert(k, v).is_none();
                    prop_assert_eq!(newly, model_newly, "insert({}, {})", k, v);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(map.remove(&k), model.remove(&k).is_some(), "remove({})", k);
                }
                Op::Lookup(k) => {
                    prop_assert_eq!(map.get_cloned(&k), model.get(&k).copied(), "lookup({})", k);
                }
                Op::ResizeTo(n) => map.resize_to(n as usize),
            }
            prop_assert_eq!(map.len(), model.len());
        }

        // Structural invariants hold after any sequence.
        map.check_invariants().map_err(TestCaseError::fail)?;

        // Final contents match exactly.
        let mut contents = map.to_vec();
        contents.sort_unstable();
        let expected: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(contents, expected);
    }

    /// Bucket-split boundary cases, made exact by the identity hasher: keys
    /// sharing their low bits collide into one bucket, and each doubling
    /// must split them apart (bit-reversal ordering keeps every bucket's
    /// run contiguous) without losing or duplicating anything. Shrinking
    /// back re-merges buckets through the now-passive dummies.
    #[test]
    fn bucket_splits_move_no_entries(
        low_bits in 0_u64..8,
        count in 1_usize..48,
        doublings in 1_u32..6,
    ) {
        let map: SplitOrderMap<u64, u64, IdentityBuild> =
            SplitOrderMap::with_buckets_and_hasher(8, IdentityBuild);
        // Every key lands in bucket `low_bits` of the initial 8-slot table.
        let keys: Vec<u64> = (0..count as u64).map(|i| low_bits | (i << 3)).collect();
        for &k in &keys {
            map.insert(k, !k);
        }
        prop_assert_eq!(map.len(), keys.len());
        for d in 0..doublings {
            map.resize_to(8 << (d + 1));
            // Touch every key so the freshly split buckets initialize
            // their dummies, then verify nothing moved or vanished.
            let guard = map.pin();
            for &k in &keys {
                prop_assert_eq!(map.get(&k, &guard).copied(), Some(!k), "after doubling {}", d);
            }
            drop(guard);
            map.check_invariants().map_err(TestCaseError::fail)?;
        }
        map.resize_to(8);
        let guard = map.pin();
        for &k in &keys {
            prop_assert_eq!(map.get(&k, &guard).copied(), Some(!k), "after shrink");
        }
        prop_assert_eq!(map.iter(&guard).count(), keys.len());
        drop(guard);
        map.check_invariants().map_err(TestCaseError::fail)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Linearizability-flavored check: threads run generated op sequences
    /// over *disjoint* key ranges (so each thread's sequential model is
    /// exact regardless of interleaving) while a resizer storms the bucket
    /// array. The union of the per-thread models must equal the final map.
    #[test]
    fn threaded_interleavings_match_merged_models(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..120),
            2..4,
        ),
        resizes in proptest::collection::vec(1_u16..256, 1..8),
    ) {
        let map: SplitOrderMap<u32, u32> = SplitOrderMap::with_buckets(2);
        let models: Vec<BTreeMap<u32, u32>> = std::thread::scope(|s| {
            let resizer = {
                let map = &map;
                let resizes = &resizes;
                s.spawn(move || {
                    for &target in resizes {
                        map.resize_to(target as usize);
                        std::thread::yield_now();
                    }
                })
            };
            let handles: Vec<_> = per_thread
                .iter()
                .enumerate()
                .map(|(tid, ops)| {
                    let map = &map;
                    s.spawn(move || {
                        // Disjoint key space: the thread id rides in the
                        // high bits, so models never interfere.
                        let rebase = |k: u16| (tid as u32) << 16 | u32::from(k);
                        let mut model = BTreeMap::new();
                        for op in ops {
                            match *op {
                                Op::Insert(k, v) => {
                                    assert_eq!(
                                        map.insert(rebase(k), v),
                                        model.insert(rebase(k), v).is_none(),
                                        "insert({})", rebase(k),
                                    );
                                }
                                Op::Remove(k) => {
                                    assert_eq!(
                                        map.remove(&rebase(k)),
                                        model.remove(&rebase(k)).is_some(),
                                        "remove({})", rebase(k),
                                    );
                                }
                                Op::Lookup(k) => {
                                    assert_eq!(
                                        map.get_cloned(&rebase(k)),
                                        model.get(&rebase(k)).copied(),
                                        "lookup({})", rebase(k),
                                    );
                                }
                                Op::ResizeTo(n) => map.resize_to(n as usize),
                            }
                        }
                        model
                    })
                })
                .collect();
            resizer.join().unwrap();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut expected: Vec<(u32, u32)> = models
            .into_iter()
            .flat_map(|m| m.into_iter())
            .collect();
        expected.sort_unstable();
        let mut contents = map.to_vec();
        contents.sort_unstable();
        prop_assert_eq!(contents, expected);
        map.check_invariants().map_err(TestCaseError::fail)?;
        map.flush_retired();
    }

    /// Dummy-node insertion races: after a jump to a large table, threads
    /// insert identity-hashed keys spread across many uninitialized
    /// buckets, so lazy `init_bucket` chains race on shared parents. Every
    /// bucket must end up with exactly one dummy (checked by the invariant
    /// scan) and every key must survive.
    #[test]
    fn concurrent_bucket_initialization_races_are_safe(
        threads in 2_usize..5,
        span in 64_u64..512,
    ) {
        let map: SplitOrderMap<u64, u64, IdentityBuild> =
            SplitOrderMap::with_buckets_and_hasher(1, IdentityBuild);
        map.resize_to(1024); // a sea of uninitialized buckets
        std::thread::scope(|s| {
            for tid in 0..threads as u64 {
                let map = &map;
                s.spawn(move || {
                    let mut k = tid;
                    while k < span {
                        assert!(map.insert(k, k + 1), "key {k} inserted twice");
                        k += threads as u64;
                    }
                });
            }
        });
        prop_assert_eq!(map.len(), span as usize);
        let guard = map.pin();
        for k in 0..span {
            prop_assert_eq!(map.get(&k, &guard).copied(), Some(k + 1));
        }
        drop(guard);
        map.check_invariants().map_err(TestCaseError::fail)?;
    }
}
