//! The split-ordered map: one lock-free ordered list + a growable array of
//! dummy-node shortcuts. See the crate docs for the design overview.

use std::borrow::Borrow;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use rp_hash::{FnvBuildHasher, ReadProtect};
use rp_rcu::{GraceSync, RcuDomain, RcuGuard};

/// Mark bit carried in the low bit of a node's `next` pointer: set means
/// the node is logically deleted (Michael's lock-free list). Node boxes are
/// at least word-aligned, so the bit is always free.
const MARK: usize = 1;

/// Default initial bucket count.
const DEFAULT_BUCKETS: usize = 8;

/// Hard ceiling on the shortcut-array size (2^24 buckets ≈ 128 MiB of
/// pointers — far beyond anything the workloads reach).
const MAX_BUCKETS: usize = 1 << 24;

/// Grow when `len > num_buckets * MAX_LOAD` (matches the other tables'
/// default load-factor ceiling of 2.0).
const MAX_LOAD: usize = 2;

/// Default pending-callback threshold for the opportunistic reclamation
/// pass ([`SplitOrderMap::maintain`]).
const DEFAULT_RECLAIM_THRESHOLD: usize = 256;

#[inline]
fn ptr_of<K, V>(tag: usize) -> *mut Node<K, V> {
    (tag & !MARK) as *mut Node<K, V>
}

#[inline]
fn is_marked(tag: usize) -> bool {
    tag & MARK == MARK
}

/// The split-order key of a data node: the bit-reversed hash with the low
/// bit set, so data keys are odd and sort *after* their bucket's dummy.
#[inline]
fn data_so_key(hash: u64) -> u64 {
    hash.reverse_bits() | 1
}

/// The split-order key of bucket `b`'s dummy node: the bit-reversed index.
/// Bucket indexes are far below 2^63, so dummy keys are always even.
#[inline]
fn dummy_so_key(bucket: usize) -> u64 {
    (bucket as u64).reverse_bits()
}

/// The parent a bucket splits from: the index with its highest set bit
/// cleared. Only meaningful for `bucket > 0`; bucket 0 is the list head.
#[inline]
fn parent_of(bucket: usize) -> usize {
    debug_assert!(bucket > 0);
    bucket & !(1usize << (usize::BITS - 1 - bucket.leading_zeros()))
}

/// A list node: either a permanent per-bucket *dummy* (shortcut target) or
/// a data node. The `next` field carries the [`MARK`] bit.
struct Node<K, V> {
    so_key: u64,
    next: AtomicUsize,
    kind: NodeKind<K, V>,
}

enum NodeKind<K, V> {
    /// A bucket's dummy node. Stays unmarked while its bucket is inside
    /// the shortcut array; a shrink's compaction pass marks and unlinks
    /// the dummies of buckets that no longer exist.
    Bucket,
    /// A data entry. The value lives behind a pointer cell so updates can
    /// replace it in place (publish new, retire old) without touching the
    /// list structure.
    Data { key: K, value: AtomicPtr<V> },
}

impl<K, V> Node<K, V> {
    fn dummy(so_key: u64) -> Box<Node<K, V>> {
        Box::new(Node {
            so_key,
            next: AtomicUsize::new(0),
            kind: NodeKind::Bucket,
        })
    }

    fn data(so_key: u64, key: K, value: *mut V) -> Box<Node<K, V>> {
        Box::new(Node {
            so_key,
            next: AtomicUsize::new(0),
            kind: NodeKind::Data {
                key,
                value: AtomicPtr::new(value),
            },
        })
    }
}

impl<K, V> Drop for Node<K, V> {
    fn drop(&mut self) {
        if let NodeKind::Data { value, .. } = &mut self.kind {
            let ptr = *value.get_mut();
            if !ptr.is_null() {
                // SAFETY: a data node owns its current value box; replaced
                // values were retired separately with the cell updated.
                unsafe { drop(Box::from_raw(ptr)) };
            }
        }
    }
}

/// The growable shortcut array: slot `b` points at bucket `b`'s dummy node
/// (or null before the bucket's first write — readers fall back to the
/// parent chain). Published as a whole via one `compare_exchange`; retired
/// arrays go through the deferred queue, never a blocking grace wait.
struct BucketArray<K, V> {
    mask: u64,
    slots: Box<[AtomicPtr<Node<K, V>>]>,
}

impl<K, V> BucketArray<K, V> {
    fn new(size: usize) -> Box<BucketArray<K, V>> {
        debug_assert!(size.is_power_of_two());
        let slots: Vec<AtomicPtr<Node<K, V>>> =
            (0..size).map(|_| AtomicPtr::new(ptr::null_mut())).collect();
        Box::new(BucketArray {
            mask: (size - 1) as u64,
            slots: slots.into_boxed_slice(),
        })
    }

    /// A resized copy: shared prefix of shortcuts carried over, the rest
    /// null (initialized lazily on first write — dummies are *not* created
    /// eagerly, which is what makes resizing O(buckets) pointer copies).
    fn resized_copy(&self, size: usize) -> Box<BucketArray<K, V>> {
        let new = BucketArray::new(size);
        for i in 0..self.slots.len().min(size) {
            new.slots[i].store(self.slots[i].load(Ordering::Acquire), Ordering::Relaxed);
        }
        new
    }

    fn size(&self) -> usize {
        self.slots.len()
    }
}

/// Outcome of a writer-side list search (Michael's `find`): either the
/// matching live node, or the insertion point for the target key.
enum FindResult<'g, K, V> {
    Found {
        prev: &'g AtomicUsize,
        node: &'g Node<K, V>,
        succ_tag: usize,
    },
    Missing {
        prev: &'g AtomicUsize,
        succ: *mut Node<K, V>,
    },
    /// The dummy the walk started from was itself marked dead (a shrink's
    /// compaction caught it between the caller resolving the bucket head
    /// and the walk). The caller must re-resolve the head — writer-side
    /// callers repair the stale shortcut via `init_bucket`.
    HeadDead,
}

/// A lock-free split-ordered hash map (Shalev & Shavit).
///
/// * **Lookups** are wait-free-in-practice list walks, generic over the
///   workspace's [`ReadProtect`] witness — an EBR guard ([`Self::pin`]) or
///   a QSBR handle — and never write to shared memory.
/// * **Inserts / removes** are CAS loops on the single ordered list
///   (logical deletion via a mark bit, physical unlinking by whichever
///   writer passes next). No locks anywhere on the write side.
/// * **Resizing** publishes a larger or smaller shortcut array with one
///   `compare_exchange` and retires the old one through the deferred
///   queue: **no data moves, no writer lock, no grace-period wait**. New
///   buckets splice their dummy node in lazily on first write.
///
/// Unlinked nodes and retired arrays are reclaimed through
/// [`GraceSync`], which covers both the EBR and QSBR reader populations —
/// the same funnel the relativistic tables use.
pub struct SplitOrderMap<K, V, S = FnvBuildHasher> {
    hasher: S,
    buckets: AtomicPtr<BucketArray<K, V>>,
    /// Bucket 0's dummy: split-order key 0, the global list head. Created
    /// at construction, freed only on drop.
    head: *mut Node<K, V>,
    count: AtomicUsize,
    reclaim_threshold: AtomicUsize,
}

// SAFETY: all shared mutation goes through atomics; `head` is written only
// during construction and drop. K/V cross threads (stored, retired, and
// dropped on arbitrary threads), hence the Send + Sync bounds on both.
unsafe impl<K: Send + Sync, V: Send + Sync, S: Send + Sync> Send for SplitOrderMap<K, V, S> {}
unsafe impl<K: Send + Sync, V: Send + Sync, S: Send + Sync> Sync for SplitOrderMap<K, V, S> {}

impl<K, V, S> SplitOrderMap<K, V, S>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Send + Sync + 'static,
    S: BuildHasher,
{
    /// Creates a map with `buckets` initial buckets (rounded up to a power
    /// of two) and the given hasher.
    pub fn with_buckets_and_hasher(buckets: usize, hasher: S) -> SplitOrderMap<K, V, S> {
        let size = buckets.clamp(1, MAX_BUCKETS).next_power_of_two();
        let head = Box::into_raw(Node::dummy(0));
        let array = BucketArray::new(size);
        array.slots[0].store(head, Ordering::Relaxed);
        SplitOrderMap {
            hasher,
            buckets: AtomicPtr::new(Box::into_raw(array)),
            head,
            count: AtomicUsize::new(0),
            reclaim_threshold: AtomicUsize::new(DEFAULT_RECLAIM_THRESHOLD),
        }
    }

    /// Pins the calling thread into the global EBR domain — the guard is a
    /// lookup witness for [`Self::get`] and friends.
    pub fn pin(&self) -> RcuGuard<'static> {
        rp_rcu::pin()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Returns `true` when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current shortcut-array size (the bucket count).
    pub fn num_buckets(&self) -> usize {
        let _guard = self.pin();
        // SAFETY: the array cannot be retired and freed while this thread
        // is pinned.
        unsafe { &*self.buckets.load(Ordering::Acquire) }.size()
    }

    /// Hashes a key exactly as the map's own operations do.
    pub fn hash_one<Q>(&self, key: &Q) -> u64
    where
        Q: Hash + ?Sized,
    {
        self.hasher.hash_one(key)
    }

    /// Sets the pending-callback threshold above which [`Self::maintain`]
    /// runs a reclamation pass.
    pub fn set_reclaim_threshold(&self, threshold: usize) {
        self.reclaim_threshold
            .store(threshold.max(1), Ordering::Relaxed);
    }

    /// Looks up `key` under the given read-side witness. Never writes to
    /// shared memory — marked nodes are skipped, not unlinked.
    pub fn get<'g, Q, P>(&'g self, key: &Q, protect: &'g P) -> Option<&'g V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        P: ReadProtect,
    {
        let hash = self.hash_one(key);
        self.get_matching_prehashed(hash, |k| k.borrow() == key, protect)
    }

    /// Raw lookup by precomputed hash and key predicate — the byte-keyed
    /// hot path used by the cache engine (`hash` must come from a hasher
    /// equivalent to this map's).
    pub fn get_matching_prehashed<'g, P, F>(
        &'g self,
        hash: u64,
        mut matches: F,
        protect: &'g P,
    ) -> Option<&'g V>
    where
        P: ReadProtect,
        F: FnMut(&K) -> bool,
    {
        protect.assert_protecting();
        let so_key = data_so_key(hash);
        // SAFETY: the witness keeps the current array and every reachable
        // node alive for 'g.
        let array = unsafe { &*self.buckets.load(Ordering::Acquire) };
        let mut curr = self.bucket_head(array, (hash & array.mask) as usize);
        while !curr.is_null() {
            // SAFETY: reachable node under the witness (see above).
            let node = unsafe { &*curr };
            if node.so_key > so_key {
                return None;
            }
            let next_tag = node.next.load(Ordering::Acquire);
            if node.so_key == so_key && !is_marked(next_tag) {
                if let NodeKind::Data { key, value } = &node.kind {
                    if matches(key) {
                        // SAFETY: a live data node's value pointer is
                        // non-null and protected for 'g.
                        return Some(unsafe { &*value.load(Ordering::Acquire) });
                    }
                }
            }
            curr = ptr_of(next_tag);
        }
        None
    }

    /// Returns `true` if `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let guard = self.pin();
        self.get(key, &guard).is_some()
    }

    /// Looks up `key` and clones the value out (pins internally).
    pub fn get_cloned<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        V: Clone,
    {
        let guard = self.pin();
        self.get(key, &guard).cloned()
    }

    /// Inserts `key → value`. Returns `true` if the key was newly
    /// inserted, `false` if an existing entry's value was replaced (the
    /// old value is retired through the deferred queue).
    ///
    /// Lock-free: a CAS loop over the ordered list. A *fresh* insert never
    /// queues or waits for reclamation, so insert-driven growth performs
    /// zero `synchronize` calls.
    pub fn insert(&self, key: K, value: V) -> bool {
        let hash = self.hash_one(&key);
        self.insert_prehashed(hash, key, value)
    }

    /// [`Self::insert`] with a precomputed hash.
    pub fn insert_prehashed(&self, hash: u64, key: K, value: V) -> bool {
        let so_key = data_so_key(hash);
        let new_node = Box::into_raw(Node::data(so_key, key, Box::into_raw(Box::new(value))));
        let mut replaced = false;
        {
            let _guard = rp_rcu::pin();
            // SAFETY: `new_node` is ours until linked; its key lives as
            // long as the node.
            let new_key: &K = match unsafe { &(*new_node).kind } {
                NodeKind::Data { key, .. } => key,
                NodeKind::Bucket => unreachable!("fresh node is data"),
            };
            loop {
                // SAFETY: pinned above.
                let array = unsafe { &*self.buckets.load(Ordering::Acquire) };
                let head = self.init_bucket(array, (hash & array.mask) as usize);
                match self.find(head, so_key, &mut |kind| match kind {
                    NodeKind::Data { key, .. } => key == new_key,
                    NodeKind::Bucket => false,
                }) {
                    FindResult::HeadDead => {
                        // The bucket head died to a shrink compaction
                        // mid-walk; loop to re-resolve (and repair) it.
                    }
                    FindResult::Found { node, .. } => {
                        let NodeKind::Data { value, .. } = &node.kind else {
                            unreachable!("found node matched the data predicate");
                        };
                        // Replace the value in place: move our fresh box
                        // into the live node, retire the old one. If a
                        // concurrent remove marks this node, the update
                        // linearizes immediately *before* that removal.
                        let fresh = match unsafe { &(*new_node).kind } {
                            NodeKind::Data { value, .. } => {
                                value.swap(ptr::null_mut(), Ordering::Relaxed)
                            }
                            NodeKind::Bucket => unreachable!(),
                        };
                        let old = value.swap(fresh, Ordering::AcqRel);
                        // SAFETY: `old` is unreachable from the node now;
                        // readers may still hold references, so defer.
                        unsafe { RcuDomain::global().defer_free(old) };
                        // SAFETY: never linked; its value cell is null.
                        unsafe { drop(Box::from_raw(new_node)) };
                        replaced = true;
                        break;
                    }
                    FindResult::Missing { prev, succ } => {
                        // SAFETY: unlinked node, we are the only writer.
                        unsafe { (*new_node).next.store(succ as usize, Ordering::Relaxed) };
                        if prev
                            .compare_exchange(
                                succ as usize,
                                new_node as usize,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                        {
                            break;
                        }
                    }
                }
            }
        }
        if replaced {
            self.maybe_reclaim();
            false
        } else {
            let len = self.count.fetch_add(1, Ordering::Relaxed) + 1;
            self.maybe_grow(len);
            true
        }
    }

    /// Removes `key`. Returns `true` if it was present. Lock-free: the
    /// node's next pointer is marked (logical delete), then unlinked and
    /// retired through the deferred queue.
    pub fn remove<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let hash = self.hash_one(key);
        self.remove_prehashed(hash, key)
    }

    /// [`Self::remove`] with a precomputed hash.
    pub fn remove_prehashed<Q>(&self, hash: u64, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        self.remove_matching_prehashed(hash, |k| k.borrow() == key)
    }

    /// Removes the entry whose key satisfies `matches` within the hash's
    /// split-order run. Returns `true` if an entry was removed.
    pub fn remove_matching_prehashed<F>(&self, hash: u64, mut matches: F) -> bool
    where
        F: FnMut(&K) -> bool,
    {
        let so_key = data_so_key(hash);
        let removed = {
            let _guard = rp_rcu::pin();
            loop {
                // SAFETY: pinned above.
                let array = unsafe { &*self.buckets.load(Ordering::Acquire) };
                let bucket = (hash & array.mask) as usize;
                let head = self.bucket_head(array, bucket);
                match self.find(head, so_key, &mut |kind| match kind {
                    NodeKind::Data { key, .. } => matches(key),
                    NodeKind::Bucket => false,
                }) {
                    FindResult::HeadDead => {
                        // Stale shortcut to a dummy a shrink compaction
                        // killed — repair it like a writer and retry.
                        self.init_bucket(array, bucket);
                    }
                    FindResult::Missing { .. } => break false,
                    FindResult::Found {
                        prev,
                        node,
                        succ_tag,
                    } => {
                        // Logical delete first; on failure the node was
                        // concurrently marked or its successor changed.
                        if node
                            .next
                            .compare_exchange(
                                succ_tag,
                                succ_tag | MARK,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_err()
                        {
                            continue;
                        }
                        self.count.fetch_sub(1, Ordering::Relaxed);
                        let node_ptr = node as *const Node<K, V> as *mut Node<K, V>;
                        if prev
                            .compare_exchange(
                                node_ptr as usize,
                                succ_tag,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                        {
                            // SAFETY: we unlinked it; exactly one thread
                            // wins this CAS, so exactly one retire.
                            unsafe { RcuDomain::global().defer_free(node_ptr) };
                        } else {
                            // Let a fresh traversal unlink and retire it.
                            let _ = self.find(head, so_key, &mut |_| false);
                        }
                        break true;
                    }
                }
            }
        };
        if removed {
            self.maybe_reclaim();
        }
        removed
    }

    /// Grows or shrinks the shortcut array to `buckets` (rounded to a
    /// power of two). One `compare_exchange` publishes the new array; the
    /// old one is retired without any grace-period wait, and data never
    /// moves either way. A shrink additionally runs a compaction pass that
    /// marks, unlinks, and retires the dummies of the buckets that no
    /// longer exist — without it every grow→shrink cycle would leak its
    /// dummy nodes into the list as permanent hops.
    ///
    /// An explicit grow also initializes every new bucket's dummy shortcut
    /// eagerly (re-adopting passive dummies a racing shrink has not yet
    /// compacted). The auto-grow on insert stays lazy — a single pointer
    /// publication — but an administrative resize is a writer that can
    /// afford the walk, and leaving thousands of slots null would send
    /// readers down long parent-chain fallbacks until ordinary writers
    /// happen to warm them.
    pub fn resize_to(&self, buckets: usize) {
        let target = buckets.clamp(1, MAX_BUCKETS).next_power_of_two();
        let shrank = {
            let _guard = rp_rcu::pin();
            // SAFETY: pinned above.
            let before = unsafe { &*self.buckets.load(Ordering::Acquire) }.size();
            self.publish_size(target, true);
            // SAFETY: pinned above.
            let array = unsafe { &*self.buckets.load(Ordering::Acquire) };
            // A concurrent resize may have published a different size; only
            // warm what is actually visible.
            for bucket in 0..array.size().min(target) {
                if array.slots[bucket].load(Ordering::Acquire).is_null() {
                    self.init_bucket(array, bucket);
                }
            }
            before > target
        };
        if shrank {
            self.compact();
        }
    }

    /// Unlinks and retires the passive dummies a shrink leaves behind:
    /// every bucket dummy whose index falls outside the current shortcut
    /// array is marked dead (the same logical-delete bit data nodes use),
    /// physically removed by a sweep, and reclaimed through the deferred
    /// queue like any other node.
    ///
    /// A grow racing this pass may republish a shortcut to a dummy just
    /// before it is marked. Writers recover via [`FindResult::HeadDead`]
    /// (repairing the slot in `init_bucket`); readers are protected
    /// because `find` scrubs the stale shortcut *before* retiring a dying
    /// dummy and `publish_size` re-validates freshly copied slots.
    fn compact(&self) {
        let _guard = rp_rcu::pin();
        // SAFETY: pinned — the array and every linked node stay alive.
        let array = unsafe { &*self.buckets.load(Ordering::Acquire) };
        let size = array.size();
        let mut curr = self.head;
        while !curr.is_null() {
            // SAFETY: reachable node under the pin.
            let node = unsafe { &*curr };
            let next_tag = node.next.load(Ordering::Acquire);
            if !is_marked(next_tag)
                && matches!(node.kind, NodeKind::Bucket)
                && node.so_key != 0
                && node.so_key.reverse_bits() as usize >= size
            {
                // Logical delete. A CAS failure means the successor just
                // changed under us — the next shrink's pass gets it.
                let _ = node.next.compare_exchange(
                    next_tag,
                    next_tag | MARK,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
            curr = ptr_of(node.next.load(Ordering::Acquire));
        }
        // Sweep: one full walk physically unlinks everything marked.
        let _ = self.find(self.head, u64::MAX, &mut |_| false);
    }

    /// Clears the current array's shortcut to a dying dummy, if one still
    /// points at it. Must run before the dummy is retired, so that no
    /// reader pinning *after* its grace period can reach the freed node
    /// through a stale slot (readers that already loaded the slot hold a
    /// pin, which blocks the free).
    fn scrub_shortcut(&self, dummy: *mut Node<K, V>) {
        // SAFETY: the caller is pinned and has not retired `dummy` yet.
        let bucket = unsafe { &*dummy }.so_key.reverse_bits() as usize;
        let array = unsafe { &*self.buckets.load(Ordering::Acquire) };
        if bucket < array.size() {
            let _ = array.slots[bucket].compare_exchange(
                dummy,
                ptr::null_mut(),
                Ordering::AcqRel,
                Ordering::Acquire,
            );
        }
    }

    /// Total nodes currently linked into the list — bucket dummies and
    /// data nodes, marked ones included. A structural diagnostic (the
    /// shrink-compaction tests assert the leak stays fixed with it);
    /// meaningful when quiesced.
    pub fn node_count(&self) -> usize {
        let _guard = self.pin();
        let mut nodes = 0;
        let mut curr = self.head;
        while !curr.is_null() {
            nodes += 1;
            // SAFETY: reachable node under the pin.
            curr = ptr_of(unsafe { &*curr }.next.load(Ordering::Acquire));
        }
        nodes
    }

    /// Runs a reclamation pass over the global deferred queue if at least
    /// the configured threshold of callbacks is pending and the calling
    /// thread can safely wait (not pinned, not an online QSBR reader).
    /// Returns `true` if a pass ran.
    pub fn maintain(&self) -> bool {
        let threshold = self.reclaim_threshold.load(Ordering::Relaxed);
        if rp_rcu::global_read_nesting() == 0 && !rp_rcu::qsbr::global_qsbr_online() {
            GraceSync::global().reclaim_if_pending(threshold)
        } else {
            false
        }
    }

    /// Waits for a grace period covering both reader flavors and executes
    /// every queued deferred callback (test/teardown helper).
    pub fn flush_retired(&self) {
        GraceSync::global().synchronize_and_reclaim();
    }

    /// Iterates over live entries under the witness. Dummy and marked
    /// nodes are skipped. Concurrent writers may or may not be observed —
    /// the usual relativistic iteration semantics.
    pub fn iter<'g, P: ReadProtect>(&'g self, protect: &'g P) -> SplitIter<'g, K, V> {
        protect.assert_protecting();
        SplitIter {
            curr: self.head,
            _protect: PhantomData,
        }
    }

    /// Collects the live entries into a vector (pins internally).
    pub fn to_vec(&self) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let guard = self.pin();
        self.iter(&guard)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Removes every entry whose key/value fails the predicate.
    pub fn retain<F>(&self, mut f: F)
    where
        F: FnMut(&K, &V) -> bool,
        K: Clone,
    {
        let doomed: Vec<(u64, K)> = {
            let guard = self.pin();
            self.iter(&guard)
                .filter(|(k, v)| !f(k, v))
                .map(|(k, _)| (self.hash_one(k), k.clone()))
                .collect()
        };
        for (hash, key) in doomed {
            self.remove_prehashed(hash, &key);
        }
    }

    /// Structural self-check (meaningful when quiesced): split-order keys
    /// nondecreasing along the list, dummies correctly keyed and unmarked
    /// (except dead buckets' dummies awaiting a compaction sweep), every
    /// shortcut pointing at a reachable dummy for its index, and the
    /// length counter matching the live data nodes.
    pub fn check_invariants(&self) -> Result<(), String> {
        let _guard = self.pin();
        // SAFETY: pinned above.
        let array = unsafe { &*self.buckets.load(Ordering::Acquire) };
        let mut last_so: Option<u64> = None;
        let mut live = 0usize;
        let mut dummies: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut curr = self.head;
        while !curr.is_null() {
            // SAFETY: reachable node under the pin.
            let node = unsafe { &*curr };
            let next_tag = node.next.load(Ordering::Acquire);
            if let Some(prev_so) = last_so {
                if node.so_key < prev_so {
                    return Err(format!(
                        "split-order keys decreased: {prev_so:#x} -> {:#x}",
                        node.so_key
                    ));
                }
            }
            match &node.kind {
                NodeKind::Bucket => {
                    if node.so_key & 1 != 0 {
                        return Err(format!("dummy with odd so_key {:#x}", node.so_key));
                    }
                    if is_marked(next_tag) {
                        // A dying passive dummy (marked by a shrink's
                        // compaction, not yet swept) is legal only while
                        // its bucket sits outside the current array. It is
                        // not canonical, so it stays out of the dummy map.
                        let bucket = node.so_key.reverse_bits() as usize;
                        if bucket < array.size() {
                            return Err(format!("marked dummy for live bucket {bucket}"));
                        }
                    } else if dummies.insert(node.so_key, curr as usize).is_some() {
                        return Err(format!("duplicate dummy for so_key {:#x}", node.so_key));
                    }
                }
                NodeKind::Data { .. } => {
                    if node.so_key & 1 != 1 {
                        return Err(format!("data node with even so_key {:#x}", node.so_key));
                    }
                    if !is_marked(next_tag) {
                        live += 1;
                    }
                }
            }
            last_so = Some(node.so_key);
            curr = ptr_of(next_tag);
        }
        for (bucket, slot) in array.slots.iter().enumerate() {
            let ptr = slot.load(Ordering::Acquire);
            if ptr.is_null() {
                if bucket == 0 {
                    return Err("bucket 0 shortcut is null".to_string());
                }
                continue;
            }
            let expected = dummy_so_key(bucket);
            match dummies.get(&expected) {
                Some(&seen) if seen == ptr as usize => {}
                Some(_) => {
                    return Err(format!(
                        "bucket {bucket} shortcut does not point at the list's dummy"
                    ))
                }
                None => {
                    return Err(format!(
                        "bucket {bucket} shortcut points at an unreachable dummy"
                    ))
                }
            }
        }
        let counted = self.len();
        if live != counted {
            return Err(format!(
                "length counter {counted} != {live} live data nodes"
            ));
        }
        Ok(())
    }

    /// Read-side bucket-head resolution: follow the parent chain until a
    /// published shortcut is found. Bucket 0 is always published, so this
    /// terminates without ever writing.
    fn bucket_head(&self, array: &BucketArray<K, V>, mut bucket: usize) -> *mut Node<K, V> {
        loop {
            let ptr = array.slots[bucket].load(Ordering::Acquire);
            if !ptr.is_null() {
                return ptr;
            }
            bucket = parent_of(bucket);
        }
    }

    /// Writer-side bucket initialization: recursively ensure the parent is
    /// initialized, splice this bucket's dummy into the list (adopting a
    /// concurrently-spliced one), and publish the shortcut. Idempotent and
    /// lock-free; recursion depth is at most `log2(MAX_BUCKETS)`.
    ///
    /// Doubles as the repair path for shortcuts left pointing at a dummy a
    /// shrink compaction killed: the loop returns only once the slot holds
    /// an unmarked dummy, clearing and re-splicing anything marked. That
    /// post-publish validation (under the caller's pin, which also blocks
    /// the dummy's free) is what keeps a stale publish from outliving the
    /// retire-time scrub.
    ///
    /// Caller must be pinned.
    fn init_bucket(&self, array: &BucketArray<K, V>, bucket: usize) -> *mut Node<K, V> {
        let slot = &array.slots[bucket];
        loop {
            let existing = slot.load(Ordering::Acquire);
            if !existing.is_null() {
                // SAFETY: protected by the caller's pin.
                if !is_marked(unsafe { &*existing }.next.load(Ordering::Acquire)) {
                    return existing;
                }
                // The dummy died to a compaction after this shortcut was
                // published (its bucket came back via a grow racing the
                // shrink). Clear the slot and splice a fresh dummy.
                let _ = slot.compare_exchange(
                    existing,
                    ptr::null_mut(),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                continue;
            }
            debug_assert!(bucket > 0, "bucket 0's dummy is never null or marked");
            let dummy = self.insert_dummy(array, bucket);
            // Losing this race is fine: the winner published the same dummy
            // (there is exactly one unmarked dummy per split-order key) —
            // and the next turn of the loop validates whatever is there.
            let _ =
                slot.compare_exchange(ptr::null_mut(), dummy, Ordering::AcqRel, Ordering::Acquire);
        }
    }

    /// Finds bucket `bucket`'s dummy in the list, or splices a new one in
    /// under its parent. Returns the canonical (live at find time) dummy.
    /// Caller must be pinned.
    fn insert_dummy(&self, array: &BucketArray<K, V>, bucket: usize) -> *mut Node<K, V> {
        let so_key = dummy_so_key(bucket);
        let mut spare: *mut Node<K, V> = ptr::null_mut();
        let found = loop {
            let head = self.init_bucket(array, parent_of(bucket));
            match self.find(head, so_key, &mut |kind| matches!(kind, NodeKind::Bucket)) {
                FindResult::HeadDead => {
                    // The parent died to a compaction mid-walk; re-resolve
                    // (and repair) it.
                    continue;
                }
                FindResult::Found { node, .. } => {
                    break node as *const Node<K, V> as *mut Node<K, V>;
                }
                FindResult::Missing { prev, succ } => {
                    if spare.is_null() {
                        spare = Box::into_raw(Node::dummy(so_key));
                    }
                    // SAFETY: `spare` is unlinked and ours.
                    unsafe { (*spare).next.store(succ as usize, Ordering::Relaxed) };
                    if prev
                        .compare_exchange(
                            succ as usize,
                            spare as usize,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        let won = spare;
                        spare = ptr::null_mut();
                        break won;
                    }
                }
            }
        };
        if !spare.is_null() {
            // SAFETY: never linked.
            unsafe { drop(Box::from_raw(spare)) };
        }
        found
    }

    /// Michael's lock-free `find`: walk from `head` to the first live node
    /// with `node.so_key >= so_key` that satisfies `matches` (scanning the
    /// whole equal-key run), physically unlinking any marked node passed —
    /// unlinked nodes are retired through the deferred queue. Caller must
    /// be pinned.
    fn find<'g, F>(
        &'g self,
        head: *mut Node<K, V>,
        so_key: u64,
        matches: &mut F,
    ) -> FindResult<'g, K, V>
    where
        F: FnMut(&NodeKind<K, V>) -> bool,
    {
        'retry: loop {
            // SAFETY: `head` is a dummy node, alive while the caller is
            // pinned (a shrink's compaction may mark it dead, but cannot
            // free it before the pin drops).
            let head_ref: &'g Node<K, V> = unsafe { &*head };
            let mut prev: &'g AtomicUsize = &head_ref.next;
            let first_tag = prev.load(Ordering::Acquire);
            if is_marked(first_tag) {
                // The start dummy was killed by a compaction; any CAS
                // through `prev` would spin forever against the mark bit.
                return FindResult::HeadDead;
            }
            let mut curr = ptr_of::<K, V>(first_tag);
            loop {
                if curr.is_null() {
                    return FindResult::Missing { prev, succ: curr };
                }
                // SAFETY: reachable node under the caller's pin; even if
                // concurrently unlinked it cannot be freed before the pin
                // drops, which also makes the prev-CAS ABA-safe.
                let node: &'g Node<K, V> = unsafe { &*curr };
                let next_tag = node.next.load(Ordering::Acquire);
                if is_marked(next_tag) {
                    let succ = ptr_of::<K, V>(next_tag);
                    if prev
                        .compare_exchange(
                            curr as usize,
                            succ as usize,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_err()
                    {
                        continue 'retry;
                    }
                    // A dying dummy's stale shortcut (if any) must be
                    // scrubbed *before* the retire — see `scrub_shortcut`.
                    if matches!(node.kind, NodeKind::Bucket) {
                        self.scrub_shortcut(curr);
                    }
                    // SAFETY: we won the unlink CAS — sole retirer.
                    unsafe { RcuDomain::global().defer_free(curr) };
                    curr = succ;
                    continue;
                }
                if node.so_key > so_key {
                    return FindResult::Missing { prev, succ: curr };
                }
                if node.so_key == so_key && matches(&node.kind) {
                    return FindResult::Found {
                        prev,
                        node,
                        succ_tag: next_tag,
                    };
                }
                prev = &node.next;
                curr = ptr_of(next_tag);
            }
        }
    }

    /// Doubles the shortcut array when the load factor crosses the
    /// ceiling. Non-blocking; called after a fresh insert.
    fn maybe_grow(&self, len: usize) {
        let _guard = rp_rcu::pin();
        // SAFETY: pinned above.
        let array = unsafe { &*self.buckets.load(Ordering::Acquire) };
        let size = array.size();
        if len > size * MAX_LOAD && size < MAX_BUCKETS {
            self.publish_size(size * 2, false);
        }
    }

    /// Publishes a shortcut array of exactly `target` slots (a copy of the
    /// current one, truncated or null-extended). `allow_shrink` guards the
    /// auto-grow path against racing an explicit shrink backwards. The old
    /// array is retired via the deferred queue — **never** a blocking
    /// grace-period wait, which is the whole point of this resize design.
    ///
    /// Caller must be pinned.
    fn publish_size(&self, target: usize, allow_shrink: bool) {
        loop {
            let old_ptr = self.buckets.load(Ordering::Acquire);
            // SAFETY: caller is pinned.
            let old = unsafe { &*old_ptr };
            if old.size() == target || (!allow_shrink && old.size() > target) {
                return;
            }
            let new_ptr = Box::into_raw(old.resized_copy(target));
            match self.buckets.compare_exchange(
                old_ptr,
                new_ptr,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // A copied shortcut may point at a dummy a concurrent
                    // compaction marked *after* the copy — re-validate the
                    // published slots under this same pin (which blocks
                    // the dummy's free), so no stale pointer survives the
                    // retire-time scrub into a fresh array.
                    // SAFETY: pinned; a marked dummy cannot be freed
                    // before this pin drops.
                    let new = unsafe { &*new_ptr };
                    for slot in new.slots.iter() {
                        let ptr = slot.load(Ordering::Acquire);
                        if !ptr.is_null()
                            && is_marked(unsafe { &*ptr }.next.load(Ordering::Acquire))
                        {
                            let _ = slot.compare_exchange(
                                ptr,
                                ptr::null_mut(),
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            );
                        }
                    }
                    // SAFETY: unpublished now; readers still inside it are
                    // covered by the grace period the deferred queue waits
                    // out before freeing.
                    unsafe { RcuDomain::global().defer_free(old_ptr) };
                    return;
                }
                Err(_) => {
                    // Lost to a concurrent resize; ours was never
                    // published.
                    // SAFETY: ours alone, never shared.
                    unsafe { drop(Box::from_raw(new_ptr)) };
                }
            }
        }
    }

    /// Opportunistic reclamation after operations that queued callbacks.
    /// Skipped when the thread cannot safely wait for a grace period.
    fn maybe_reclaim(&self) {
        let threshold = self.reclaim_threshold.load(Ordering::Relaxed);
        if rp_rcu::global_read_nesting() == 0 && !rp_rcu::qsbr::global_qsbr_online() {
            GraceSync::global().reclaim_if_pending(threshold);
        }
    }
}

impl<K, V, S> SplitOrderMap<K, V, S>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Send + Sync + 'static,
    S: BuildHasher + Default,
{
    /// Creates an empty map with the default hasher and bucket count.
    pub fn new() -> SplitOrderMap<K, V, S> {
        SplitOrderMap::with_buckets_and_hasher(DEFAULT_BUCKETS, S::default())
    }

    /// Creates an empty map with `buckets` initial buckets.
    pub fn with_buckets(buckets: usize) -> SplitOrderMap<K, V, S> {
        SplitOrderMap::with_buckets_and_hasher(buckets, S::default())
    }
}

impl<K, V, S> Default for SplitOrderMap<K, V, S>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Send + Sync + 'static,
    S: BuildHasher + Default,
{
    fn default() -> Self {
        SplitOrderMap::new()
    }
}

impl<K, V, S> Drop for SplitOrderMap<K, V, S> {
    fn drop(&mut self) {
        // Exclusive access: free every node still linked (marked ones that
        // were never physically unlinked included — those were never
        // retired, so there is no double free) and the published array.
        // Nodes already unlinked live in the deferred queue and are freed
        // by its reclamation passes.
        let mut curr = self.head;
        while !curr.is_null() {
            // SAFETY: &mut self — no readers, no writers.
            let node = unsafe { Box::from_raw(curr) };
            curr = ptr_of(node.next.load(Ordering::Relaxed));
            drop(node);
        }
        let array = *self.buckets.get_mut();
        // SAFETY: the published array is owned by the map.
        unsafe { drop(Box::from_raw(array)) };
    }
}

/// Iterator over a [`SplitOrderMap`]'s live entries under a read witness.
pub struct SplitIter<'g, K, V> {
    curr: *mut Node<K, V>,
    _protect: PhantomData<&'g Node<K, V>>,
}

impl<'g, K, V> Iterator for SplitIter<'g, K, V> {
    type Item = (&'g K, &'g V);

    fn next(&mut self) -> Option<(&'g K, &'g V)> {
        while !self.curr.is_null() {
            // SAFETY: the iterator borrows the witness for 'g; every
            // reachable node stays alive that long.
            let node = unsafe { &*self.curr };
            let next_tag = node.next.load(Ordering::Acquire);
            self.curr = ptr_of(next_tag);
            if is_marked(next_tag) {
                continue;
            }
            if let NodeKind::Data { key, value } = &node.kind {
                // SAFETY: live data node — value pointer is non-null.
                let value = unsafe { &*value.load(Ordering::Acquire) };
                return Some((key, value));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_order_keys_sort_buckets_correctly() {
        // Dummies are even, data odd; bucket b's dummy precedes all data
        // hashed to b and the dummy of its future split b + size.
        assert_eq!(dummy_so_key(0), 0);
        assert!(dummy_so_key(1) > dummy_so_key(0));
        for hash in [0u64, 1, 2, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(data_so_key(hash) & 1, 1);
        }
        // hash 2 lands in bucket 2 (size 4): its so_key sits between
        // dummy(2) and dummy(3)'s ranges... concretely above dummy(2).
        assert!(data_so_key(2) > dummy_so_key(2));
        assert_eq!(parent_of(1), 0);
        assert_eq!(parent_of(2), 0);
        assert_eq!(parent_of(3), 1);
        assert_eq!(parent_of(6), 2);
        assert_eq!(parent_of(12), 4);
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let map: SplitOrderMap<u64, u64> = SplitOrderMap::new();
        assert!(map.is_empty());
        assert!(map.insert(1, 10));
        assert!(!map.insert(1, 11), "second insert replaces");
        assert!(map.insert(2, 20));
        {
            let guard = map.pin();
            assert_eq!(map.get(&1, &guard), Some(&11));
            assert_eq!(map.get(&2, &guard), Some(&20));
            assert_eq!(map.get(&3, &guard), None);
        }
        assert_eq!(map.len(), 2);
        assert!(map.remove(&1));
        assert!(!map.remove(&1));
        assert_eq!(map.len(), 1);
        assert!(map.contains_key(&2));
        map.check_invariants().unwrap();
    }

    #[test]
    fn qsbr_handle_serves_as_lookup_witness() {
        std::thread::spawn(|| {
            let map: SplitOrderMap<u64, String> = SplitOrderMap::new();
            map.insert(7, "seven".to_string());
            let mut handle = rp_hash::QsbrReadHandle::register();
            let copied = map.get(&7, &handle).cloned();
            handle.quiescent_state();
            assert_eq!(copied.as_deref(), Some("seven"));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn growth_is_automatic_and_never_synchronizes() {
        let map: SplitOrderMap<u64, u64> = SplitOrderMap::with_buckets(2);
        let before_buckets = map.num_buckets();
        let waits_before = rp_rcu::thread_synchronize_count();
        for i in 0..10_000 {
            assert!(map.insert(i, i));
        }
        assert_eq!(
            rp_rcu::thread_synchronize_count() - waits_before,
            0,
            "the grow path must never wait for a grace period"
        );
        assert!(
            map.num_buckets() > before_buckets,
            "load factor {} should have grown the table ({} buckets)",
            map.len() as f64 / map.num_buckets() as f64,
            map.num_buckets()
        );
        assert_eq!(map.len(), 10_000);
        let guard = map.pin();
        for i in (0..10_000).step_by(97) {
            assert_eq!(map.get(&i, &guard), Some(&i));
        }
        drop(guard);
        map.check_invariants().unwrap();
    }

    #[test]
    fn shrink_keeps_entries_and_regrow_rebuilds_dummies() {
        let map: SplitOrderMap<u64, u64> = SplitOrderMap::with_buckets(64);
        for i in 0..100 {
            map.insert(i, i * 2);
        }
        map.check_invariants().unwrap();
        map.resize_to(4);
        assert_eq!(map.num_buckets(), 4);
        map.check_invariants().unwrap();
        let guard = map.pin();
        for i in 0..100 {
            assert_eq!(map.get(&i, &guard), Some(&(i * 2)));
        }
        drop(guard);
        map.resize_to(256);
        assert_eq!(map.num_buckets(), 256);
        // Touch every key; lazy bucket init rebuilds the dummies the
        // shrink's compaction reclaimed.
        for i in 0..100 {
            assert!(!map.insert(i, i * 3));
        }
        let guard = map.pin();
        for i in 0..100 {
            assert_eq!(map.get(&i, &guard), Some(&(i * 3)));
        }
        drop(guard);
        map.check_invariants().unwrap();
        map.flush_retired();
    }

    #[test]
    fn shrink_compaction_reclaims_dead_dummies() {
        let map: SplitOrderMap<u64, u64> = SplitOrderMap::with_buckets(4);
        for i in 0..100 {
            map.insert(i, i);
        }
        // Establish the baseline shape at 4 buckets (the inserts auto-grew
        // the array, so this first shrink already compacts).
        map.resize_to(4);
        map.flush_retired();
        let baseline = map.node_count();
        map.check_invariants().unwrap();

        map.resize_to(256); // eager warm links ~252 extra dummies
        assert!(map.node_count() > baseline, "grow must add dummies");
        map.resize_to(4); // shrink marks + sweeps them
        map.flush_retired();
        assert_eq!(
            map.node_count(),
            baseline,
            "a grow→shrink cycle must not leak dummy nodes into the list"
        );
        map.check_invariants().unwrap();

        // Entries survived and a later regrow rebuilds fresh dummies.
        let guard = map.pin();
        for i in 0..100 {
            assert_eq!(map.get(&i, &guard), Some(&i));
        }
        drop(guard);
        map.resize_to(64);
        for i in 0..100 {
            assert!(!map.insert(i, i + 1), "keys persist across compaction");
        }
        let guard = map.pin();
        for i in 0..100 {
            assert_eq!(map.get(&i, &guard), Some(&(i + 1)));
        }
        drop(guard);
        map.check_invariants().unwrap();
        map.flush_retired();
    }

    #[test]
    fn iter_skips_dummies_and_sees_every_entry() {
        let map: SplitOrderMap<u64, u64> = SplitOrderMap::with_buckets(2);
        for i in 0..500 {
            map.insert(i, i + 1);
        }
        map.resize_to(64); // force plenty of dummies into the list
        for i in 500..600 {
            map.insert(i, i + 1);
        }
        let mut entries = map.to_vec();
        entries.sort_unstable();
        assert_eq!(entries.len(), 600);
        for (i, (k, v)) in entries.into_iter().enumerate() {
            assert_eq!(k, i as u64);
            assert_eq!(v, k + 1);
        }
    }

    #[test]
    fn retain_removes_matching_entries() {
        let map: SplitOrderMap<u64, u64> = SplitOrderMap::new();
        for i in 0..64 {
            map.insert(i, i);
        }
        map.retain(|_, v| v % 2 == 0);
        assert_eq!(map.len(), 32);
        let guard = map.pin();
        assert!(map.get(&2, &guard).is_some());
        assert!(map.get(&3, &guard).is_none());
        drop(guard);
        map.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_writers_and_readers_storm() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let map: Arc<SplitOrderMap<u64, u64>> = Arc::new(SplitOrderMap::with_buckets(2));
        for k in 0..256u64 {
            map.insert(k, k);
        }
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for seed in 0..2u64 {
                let map = Arc::clone(&map);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut x = 0x9E37 + seed;
                    while !stop.load(Ordering::Relaxed) {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = x % 256;
                        let guard = map.pin();
                        assert_eq!(map.get(&k, &guard).copied(), Some(k), "stable key lost");
                    }
                });
            }
            for w in 0..2u64 {
                let map = Arc::clone(&map);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let base = 1_000 + w * 10_000;
                    while !stop.load(Ordering::Relaxed) {
                        for i in 0..512 {
                            map.insert(base + i, i);
                        }
                        for i in 0..512 {
                            map.remove(&(base + i));
                        }
                    }
                });
            }
            {
                let map = Arc::clone(&map);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut round = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        map.resize_to(if round.is_multiple_of(2) { 128 } else { 4 });
                        round += 1;
                        std::thread::yield_now();
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(200));
            stop.store(true, Ordering::SeqCst);
        });
        assert_eq!(map.len(), 256);
        map.check_invariants().unwrap();
        map.flush_retired();
    }
}
