//! A lock-free **split-ordered** hash map — the main *competing* resize
//! philosophy to the paper's relativistic zip/unzip.
//!
//! Shalev & Shavit's design ("Split-Ordered Lists: Lock-Free Extensible
//! Hash Tables") stores every entry in a **single lock-free ordered linked
//! list**, keyed by the *bit-reversal* of the entry's hash. A growable
//! array of bucket pointers holds shortcuts into that list: bucket `b`
//! points at a permanent *dummy* node whose split-order key is
//! `reverse_bits(b)`. Because reversing the bits turns the low `log2(size)`
//! hash bits (the bucket index) into the list's most-significant sort key,
//! doubling the table splits every bucket `b` into `b` and `b + size` —
//! **without moving a single data node**. A resize just publishes a larger
//! (or smaller) shortcut array; new dummies are spliced in lazily, on first
//! touch.
//!
//! Contrast with [`rp_hash::RpHashMap`]:
//!
//! * **Writers are lock-free** — insert and remove are CAS loops on the
//!   list (Michael's algorithm: a *mark bit* in a node's next pointer makes
//!   deletion logical first, physical later). `RpHashMap` serialises
//!   writers behind a mutex.
//! * **Resizes move no data and wait for nobody** — publishing a bigger
//!   bucket array is one `compare_exchange`; the old array is reclaimed
//!   *non-blockingly* through the global deferred queue. The relativistic
//!   table's unzip must wait out one grace period per chain-split round.
//! * **Reads carry over unchanged** — lookups are generic over the same
//!   [`rp_hash::ReadProtect`] witness (EBR guard or QSBR handle), traverse
//!   with plain `Acquire` loads, and never CAS, so the whole read-side
//!   story (barrier-free QSBR included) is identical to the rest of the
//!   workspace. Node and array reclamation funnels through
//!   [`rp_rcu::GraceSync`], covering both reader flavors.
//!
//! The price: every lookup walks a *shared global list segment* (cold
//! buckets borrow their parent's dummy until first write) and deletions
//! leave marked nodes for later traversals to unlink. Shrinking retires
//! the shortcut array *and* compacts away the dead buckets' dummy nodes
//! (marked like deleted data, swept, reclaimed through the deferred
//! queue), so repeated grow→shrink cycles do not accrete passive hops.
//!
//! ```
//! use rp_splitorder::SplitOrderMap;
//!
//! let map: SplitOrderMap<u64, &str> = SplitOrderMap::new();
//! assert!(map.insert(1, "one"));
//! assert!(!map.insert(1, "uno")); // replaced, not inserted
//! let guard = map.pin();
//! assert_eq!(map.get(&1, &guard), Some(&"uno"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod map;

pub use map::{SplitIter, SplitOrderMap};
