//! Fault-injected reactor tests: connection-handler panics are contained,
//! injected socket errors shed only the affected connection, short writes
//! still deliver complete responses, and fd exhaustion backs the listener
//! off instead of hot-spinning.
//!
//! `rp_fault`'s registry is process-global, so every test takes one serial
//! mutex and keeps its plan inside an [`rp_fault::ArmGuard`] scope.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rp_net::{Action, BufWrite, ConnIo, EventLoop, NetConfig, Service};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Echoes complete `\n`-terminated lines; `quit\n` closes.
struct LineEcho;

impl Service for LineEcho {
    type Conn = ();
    type Worker = ();
    fn on_worker_start(&self, _worker: usize) {}
    fn on_connect(&self, _peer: SocketAddr) {}
    fn on_data(&self, _worker: &mut (), _conn: &mut (), io: &mut ConnIo<'_>) -> Action {
        let mut consumed = 0;
        while io.requests < io.request_quota {
            let Some(pos) = io.input[consumed..].iter().position(|&b| b == b'\n') else {
                break;
            };
            let line = &io.input[consumed..consumed + pos + 1];
            io.requests += 1;
            if line == b"quit\n" {
                io.input.drain(..consumed + pos + 1);
                return Action::Close;
            }
            io.out.put(line);
            consumed += pos + 1;
        }
        io.input.drain(..consumed);
        Action::Continue
    }
}

fn start(config: NetConfig) -> EventLoop {
    EventLoop::bind(
        "127.0.0.1:0".parse().unwrap(),
        std::sync::Arc::new(LineEcho),
        config,
    )
    .expect("bind event loop")
}

/// Installs a panic hook that stays quiet for injected-failpoint panics.
fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.contains("injected panic at failpoint"))
            .unwrap_or(false);
        if !expected {
            default(info);
        }
    }));
}

#[test]
fn injected_handler_panic_is_contained_and_counted() {
    let _serial = serial();
    quiet_injected_panics();
    let mut server = start(NetConfig {
        workers: 1,
        panic_reply: b"SERVER_ERROR internal panic\r\n".to_vec(),
        ..NetConfig::default()
    });
    let panics_before = rp_obs::global().net.conn_panics_total.get();

    {
        let _arm = rp_fault::ArmGuard::new("net.on_data=panic*1", 1);
        // The panicked connection gets the courtesy reply, then EOF.
        let mut victim = TcpStream::connect(server.addr()).unwrap();
        victim.write_all(b"boom\n").unwrap();
        victim
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut got = Vec::new();
        // The peer may see a clean EOF or a reset depending on close
        // timing; either way the reply must arrive first.
        match victim.read_to_end(&mut got) {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
            Err(e) => panic!("reading from panicked connection: {e}"),
        }
        assert_eq!(got, b"SERVER_ERROR internal panic\r\n");
        assert_eq!(rp_fault::injected("net.on_data"), 1);
    }

    assert_eq!(
        rp_obs::global().net.conn_panics_total.get(),
        panics_before + 1,
        "the contained panic must be counted"
    );

    // The worker survived: a fresh connection is served normally.
    let mut fresh = TcpStream::connect(server.addr()).unwrap();
    fresh.write_all(b"hello\n").unwrap();
    let mut buf = [0_u8; 6];
    fresh.read_exact(&mut buf).unwrap();
    assert_eq!(&buf, b"hello\n");
    server.shutdown();
}

#[test]
fn injected_read_error_sheds_only_the_hit_connection() {
    let _serial = serial();
    let mut server = start(NetConfig {
        workers: 1,
        ..NetConfig::default()
    });

    {
        let _arm = rp_fault::ArmGuard::new("net.read=econnreset*1", 1);
        let mut victim = TcpStream::connect(server.addr()).unwrap();
        victim.write_all(b"doomed\n").unwrap();
        victim
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut got = Vec::new();
        // The injected ECONNRESET closes the connection server-side.
        match victim.read_to_end(&mut got) {
            Ok(_) => assert!(got.is_empty(), "no echo from a reset read"),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
            Err(e) => panic!("reading from reset connection: {e}"),
        }
        assert_eq!(rp_fault::injected("net.read"), 1);
    }

    let mut fresh = TcpStream::connect(server.addr()).unwrap();
    fresh.write_all(b"alive\n").unwrap();
    let mut buf = [0_u8; 6];
    fresh.read_exact(&mut buf).unwrap();
    assert_eq!(&buf, b"alive\n");
    server.shutdown();
}

#[test]
fn short_writes_still_deliver_complete_responses() {
    let _serial = serial();
    let mut server = start(NetConfig {
        workers: 1,
        ..NetConfig::default()
    });
    // Every writev for a while is clamped to 3 bytes; the flush cursor
    // must resume where the truncated write stopped, so the client still
    // receives the full, uncorrupted response.
    let _arm = rp_fault::ArmGuard::new("net.writev=short:3*64", 1);
    let mut client = TcpStream::connect(server.addr()).unwrap();
    let line = b"the whole line must survive short writes\n";
    client.write_all(line).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = vec![0_u8; line.len()];
    client.read_exact(&mut buf).unwrap();
    assert_eq!(&buf[..], &line[..]);
    assert!(rp_fault::injected("net.writev") >= 1);
    server.shutdown();
}

#[test]
fn emfile_on_accept_backs_the_listener_off_and_recovers() {
    let _serial = serial();
    let mut server = start(NetConfig {
        workers: 1,
        accept_backoff: Duration::from_millis(20),
        ..NetConfig::default()
    });
    let backoffs_before = rp_obs::global().net.accept_backoffs_total.get();

    let _arm = rp_fault::ArmGuard::new("net.accept=emfile*2", 1);
    // The TCP handshake completes in the kernel backlog regardless of the
    // failing accept(2), so connect() succeeds; the server-side accept is
    // what the failpoint poisons. After the backoff the listener re-arms
    // and drains the backlog.
    let mut client = TcpStream::connect(server.addr()).unwrap();
    client.write_all(b"patient\n").unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0_u8; 8];
    client.read_exact(&mut buf).unwrap();
    assert_eq!(&buf, b"patient\n");

    assert!(
        rp_fault::injected("net.accept") >= 1,
        "the accept failpoint must have fired"
    );
    let stats = server.stats();
    assert!(
        stats.accept_backoffs >= 1,
        "EMFILE must pause the listener, not spin it: {stats:?}"
    );
    assert!(
        rp_obs::global().net.accept_backoffs_total.get() > backoffs_before,
        "backoffs are observable"
    );
    server.shutdown();
}

#[test]
fn stuck_peer_is_force_closed_at_the_drain_deadline() {
    // No failpoints needed: a peer that sends `quit` behind a large
    // pipelined payload and then never reads leaves the connection
    // Draining with a flush that cannot complete. `drain_timeout` must
    // bound that state.
    let _serial = serial();
    let mut server = start(NetConfig {
        workers: 1,
        drain_timeout: Duration::from_millis(300),
        high_watermark: 64 * 1024 * 1024,
        idle_timeout: None,
        ..NetConfig::default()
    });
    let expired_before = rp_obs::global().net.drains_expired_total.get();

    let mut stuck = TcpStream::connect(server.addr()).unwrap();
    // ~8 MiB of echoed lines: far more than loopback socket buffers can
    // absorb, so once `quit` flips the connection to Draining the rest of
    // the response stays queued server-side forever (we never read).
    let line = {
        let mut l = vec![b'x'; 4095];
        l.push(b'\n');
        l
    };
    for _ in 0..2048 {
        stuck.write_all(&line).unwrap();
    }
    stuck.write_all(b"quit\n").unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = server.stats();
        if stats.drains_expired >= 1 && stats.current_connections == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stuck drain was never force-closed: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(rp_obs::global().net.drains_expired_total.get() > expired_before);
    server.shutdown();
}
