//! Per-connection output buffering with partial-write tracking, a
//! backpressure watermark, pooled zero-allocation response writes, and a
//! scatter-gather flush that submits every queued segment in one
//! `writev(2)` batch.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::os::unix::io::RawFd;

use bytes::Bytes;

use crate::pool::BufPool;
use crate::sys::{sys_writev, IoVec};

/// A byte sink responses are serialised into directly.
///
/// This is the seam that makes the serving hot path allocation-free:
/// protocol code writes headers and payloads *into* the connection's
/// [`WriteBuf`] (via [`PooledBuf`], which recycles segment buffers through
/// the worker's [`BufPool`]) instead of assembling a fresh `Vec<u8>` per
/// response and copying it in. `Vec<u8>` implements the trait too, so the
/// same serialisation code serves buffered baseline paths and tests.
pub trait BufWrite {
    /// Appends raw bytes to the sink.
    fn put(&mut self, bytes: &[u8]);

    /// Appends a reference-counted segment. Implementations may copy small
    /// segments (keeping pipelined replies in one `write(2)`) and queue
    /// large ones by reference without copying the payload.
    fn put_shared(&mut self, bytes: Bytes);
}

impl BufWrite for Vec<u8> {
    fn put(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }

    fn put_shared(&mut self, bytes: Bytes) {
        self.extend_from_slice(&bytes);
    }
}

/// Result of flushing a [`WriteBuf`] to a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushState {
    /// Every queued byte reached the kernel.
    Drained,
    /// The socket's send buffer filled up; the caller should request
    /// `EPOLLOUT` and retry when the socket becomes writable again.
    Blocked,
}

/// Most segments one flush submits per `writev` batch — comfortably under
/// Linux's `IOV_MAX` (1024) while keeping the gather array on the stack.
pub(crate) const MAX_IOVECS: usize = 64;

/// A sink accepting scatter-gather writes: many segments, one syscall.
///
/// The reactor's real sink is `FdSink` (raw `writev(2)` on the
/// connection's fd); tests script arbitrary partial-acceptance patterns.
/// Like [`Write::write`], a call may consume any prefix of the gathered
/// bytes — [`WriteBuf::flush_vectored`] resumes from its cursor.
pub trait VectoredWrite {
    /// Writes from every buffer in order, returning bytes consumed.
    fn writev(&mut self, bufs: &[&[u8]]) -> io::Result<usize>;
}

/// [`VectoredWrite`] over a raw socket fd via `writev(2)`. The fd is
/// borrowed, not owned: the connection's stream keeps it open for the
/// duration of the flush.
pub(crate) struct FdSink {
    pub(crate) fd: RawFd,
}

impl VectoredWrite for FdSink {
    fn writev(&mut self, bufs: &[&[u8]]) -> io::Result<usize> {
        let mut iov = [IoVec::empty(); MAX_IOVECS];
        let n = bufs.len().min(MAX_IOVECS);
        for (slot, buf) in iov.iter_mut().zip(bufs) {
            *slot = IoVec::from_slice(buf);
        }
        sys_writev(self.fd, &iov[..n])
    }
}

/// Adapts a plain [`Write`] sink to [`VectoredWrite`] by writing only the
/// first gathered buffer per call — the degenerate one-segment-per-syscall
/// flush the vectored path exists to beat, kept for in-memory sinks.
struct WriteAdapter<'a, W: Write>(&'a mut W);

impl<W: Write> VectoredWrite for WriteAdapter<'_, W> {
    fn writev(&mut self, bufs: &[&[u8]]) -> io::Result<usize> {
        self.0.write(bufs[0])
    }
}

/// A queue of response segments awaiting transmission.
///
/// Responses are pushed as whole segments ([`Vec<u8>`] or [`Bytes`]) or
/// written incrementally through [`PooledBuf`]; [`WriteBuf::flush_to`]
/// writes them out honouring short writes — a partially written front
/// segment is resumed at its cursor, never re-sent — and returns finished
/// owned segments to the worker's [`BufPool`] so steady-state serving
/// allocates nothing. Small segments are coalesced into the tail to keep
/// pipelined replies from degenerating into one tiny `write(2)` each.
pub struct WriteBuf {
    segments: VecDeque<Segment>,
    /// Bytes of the front segment already written.
    cursor: usize,
    /// Total unwritten bytes across all segments.
    len: usize,
    high_watermark: usize,
}

enum Segment {
    Owned(Vec<u8>),
    Shared(Bytes),
}

impl Segment {
    fn as_slice(&self) -> &[u8] {
        match self {
            Segment::Owned(v) => v,
            Segment::Shared(b) => b,
        }
    }
}

/// Below this size a pushed segment is copied into the previous tail
/// segment instead of queued separately.
pub(crate) const COALESCE_LIMIT: usize = 1024;

/// An owned tail segment stops accepting appended bytes once it holds this
/// much; the next write starts a fresh (pooled) segment. Bounds how much
/// capacity a single recycled buffer can accrete.
const SEGMENT_SPLIT: usize = 32 * 1024;

impl WriteBuf {
    /// Creates an empty buffer. `high_watermark` is the queue size (bytes)
    /// above which [`WriteBuf::over_watermark`] reports backpressure.
    pub fn new(high_watermark: usize) -> WriteBuf {
        WriteBuf {
            segments: VecDeque::new(),
            cursor: 0,
            len: 0,
            high_watermark: high_watermark.max(1),
        }
    }

    /// Queues an owned segment.
    pub fn push(&mut self, bytes: Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        if bytes.len() <= COALESCE_LIMIT {
            // Appending to the tail is safe even when the tail is also the
            // part-written front: the cursor indexes the front segment and
            // the new bytes land beyond it.
            if let Some(Segment::Owned(tail)) = self.segments.back_mut() {
                tail.extend_from_slice(&bytes);
                return;
            }
        }
        self.segments.push_back(Segment::Owned(bytes));
    }

    /// Queues a shared segment without copying it.
    pub fn push_shared(&mut self, bytes: Bytes) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        self.segments.push_back(Segment::Shared(bytes));
    }

    /// Appends raw bytes to the owned tail segment, starting a new segment
    /// from `pool` when the tail is shared, full, or absent. This is the
    /// allocation-free write primitive behind [`PooledBuf::put`].
    fn put_pooled(&mut self, bytes: &[u8], pool: &mut BufPool) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        match self.segments.back_mut() {
            Some(Segment::Owned(tail)) if tail.len() < SEGMENT_SPLIT => {
                tail.extend_from_slice(bytes);
            }
            _ => {
                let mut seg = pool.take();
                seg.extend_from_slice(bytes);
                self.segments.push_back(Segment::Owned(seg));
            }
        }
    }

    /// Borrows the buffer together with the worker's segment pool as a
    /// [`BufWrite`] sink.
    pub fn with_pool<'a>(&'a mut self, pool: &'a mut BufPool) -> PooledBuf<'a> {
        PooledBuf { buf: self, pool }
    }

    /// Unwritten bytes queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when the queue exceeds the high watermark — the signal to
    /// stop reading (and thus stop producing responses) until the peer
    /// drains what it already owes us.
    pub fn over_watermark(&self) -> bool {
        self.len > self.high_watermark
    }

    /// Writes as much queued data as the socket accepts, one segment per
    /// syscall (the [`Write`] adapter over [`WriteBuf::flush_vectored`];
    /// in-memory sinks and tests use this form).
    pub fn flush_to(
        &mut self,
        sink: &mut impl Write,
        pool: &mut BufPool,
    ) -> io::Result<FlushState> {
        self.flush_vectored(&mut WriteAdapter(sink), pool)
    }

    /// Writes as much queued data as the socket accepts, submitting up to
    /// `MAX_IOVECS` (64) segments per syscall.
    ///
    /// Retries on `EINTR`, resumes partial writes at the saved cursor
    /// (mid-segment, mid-batch — anywhere the kernel stopped), returns
    /// [`FlushState::Blocked`] on `EWOULDBLOCK`, and surfaces any other
    /// error (a zero-length write is reported as `WriteZero`). Owned
    /// segments that finish flushing are recycled into `pool`. Each submit
    /// bumps `net_flush_syscalls_total` and each completed segment
    /// `net_flush_segments_total`: on pipelined workloads the first stays
    /// below the second — the reduction `writev` buys.
    pub fn flush_vectored(
        &mut self,
        sink: &mut impl VectoredWrite,
        pool: &mut BufPool,
    ) -> io::Result<FlushState> {
        let net = &rp_obs::global().net;
        while !self.segments.is_empty() {
            let mut bufs: [&[u8]; MAX_IOVECS] = [&[]; MAX_IOVECS];
            let mut count = 0;
            for (slot, seg) in bufs.iter_mut().zip(self.segments.iter()) {
                let bytes = seg.as_slice();
                *slot = if count == 0 {
                    &bytes[self.cursor..]
                } else {
                    bytes
                };
                count += 1;
            }
            debug_assert!(!bufs[0].is_empty());
            net.flush_syscalls_total.inc();
            match sink.writev(&bufs[..count]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.advance(n, pool),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(FlushState::Blocked),
                Err(e) => return Err(e),
            }
        }
        Ok(FlushState::Drained)
    }

    /// Consumes `written` flushed bytes: walks segment boundaries from the
    /// front cursor, recycling finished owned segments into `pool`.
    fn advance(&mut self, mut written: usize, pool: &mut BufPool) {
        debug_assert!(written <= self.len);
        self.len -= written;
        let net = &rp_obs::global().net;
        while written > 0 {
            let front_pending = self
                .segments
                .front()
                .expect("bytes imply a segment")
                .as_slice()[self.cursor..]
                .len();
            if written >= front_pending {
                written -= front_pending;
                if let Some(Segment::Owned(done)) = self.segments.pop_front() {
                    pool.give(done);
                }
                self.cursor = 0;
                net.flush_segments_total.inc();
            } else {
                self.cursor += written;
                written = 0;
            }
        }
    }

    /// Returns every queued segment's buffer to `pool` (connection
    /// teardown; unwritten bytes are abandoned).
    pub(crate) fn recycle_into(&mut self, pool: &mut BufPool) {
        while let Some(seg) = self.segments.pop_front() {
            if let Segment::Owned(buf) = seg {
                pool.give(buf);
            }
        }
        self.cursor = 0;
        self.len = 0;
    }
}

/// A [`WriteBuf`] borrowed together with its worker's [`BufPool`]: the
/// [`BufWrite`] sink handed to services, writing straight into the
/// connection's output queue with pooled segment buffers.
pub struct PooledBuf<'a> {
    buf: &'a mut WriteBuf,
    pool: &'a mut BufPool,
}

impl PooledBuf<'_> {
    /// Unwritten bytes queued on the underlying [`WriteBuf`].
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl BufWrite for PooledBuf<'_> {
    fn put(&mut self, bytes: &[u8]) {
        self.buf.put_pooled(bytes, self.pool);
    }

    fn put_shared(&mut self, bytes: Bytes) {
        // Small payloads coalesce into the tail (one write(2) covers many
        // pipelined replies); large ones are queued by reference so the
        // payload is never copied.
        if bytes.len() <= COALESCE_LIMIT {
            self.put(&bytes);
        } else {
            self.buf.push_shared(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_pool() -> BufPool {
        BufPool::new(16, 1 << 20)
    }

    /// A sink that accepts at most `quota` bytes per write call and can be
    /// told to report `WouldBlock` after a total budget.
    struct Throttled {
        accepted: Vec<u8>,
        quota: usize,
        budget: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.quota).min(self.budget);
            self.accepted.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_resume_at_the_cursor() {
        let mut pool = test_pool();
        let mut buf = WriteBuf::new(1 << 20);
        buf.push(b"hello ".to_vec());
        buf.push_shared(Bytes::from_static(b"world"));
        let mut sink = Throttled {
            accepted: Vec::new(),
            quota: 3,
            budget: usize::MAX,
        };
        assert_eq!(
            buf.flush_to(&mut sink, &mut pool).unwrap(),
            FlushState::Drained
        );
        assert_eq!(sink.accepted, b"hello world");
        assert!(buf.is_empty());
    }

    #[test]
    fn would_block_preserves_unwritten_bytes() {
        let mut pool = test_pool();
        let mut buf = WriteBuf::new(1 << 20);
        buf.push(vec![b'x'; 2000]);
        buf.push(vec![b'y'; 2000]);
        let mut sink = Throttled {
            accepted: Vec::new(),
            quota: 512,
            budget: 1500,
        };
        assert_eq!(
            buf.flush_to(&mut sink, &mut pool).unwrap(),
            FlushState::Blocked
        );
        assert_eq!(buf.len(), 2500);
        // Unblock and finish.
        sink.budget = usize::MAX;
        assert_eq!(
            buf.flush_to(&mut sink, &mut pool).unwrap(),
            FlushState::Drained
        );
        assert_eq!(sink.accepted.len(), 4000);
        assert_eq!(&sink.accepted[..2000], &vec![b'x'; 2000][..]);
        assert_eq!(&sink.accepted[2000..], &vec![b'y'; 2000][..]);
    }

    #[test]
    fn small_pushes_coalesce() {
        let mut buf = WriteBuf::new(1 << 20);
        for _ in 0..100 {
            buf.push(b"END\r\n".to_vec());
        }
        assert_eq!(buf.len(), 500);
        assert!(
            buf.segments.len() <= 2,
            "expected coalescing, got {} segments",
            buf.segments.len()
        );
    }

    #[test]
    fn watermark_reports_backpressure() {
        let mut pool = test_pool();
        let mut buf = WriteBuf::new(100);
        assert!(!buf.over_watermark());
        buf.push(vec![0; 101]);
        assert!(buf.over_watermark());
        let mut sink = Throttled {
            accepted: Vec::new(),
            quota: usize::MAX,
            budget: usize::MAX,
        };
        buf.flush_to(&mut sink, &mut pool).unwrap();
        assert!(!buf.over_watermark());
    }

    #[test]
    fn pooled_writes_coalesce_and_recycle_through_the_pool() {
        let mut pool = test_pool();
        let mut buf = WriteBuf::new(1 << 20);
        {
            let mut out = buf.with_pool(&mut pool);
            for _ in 0..50 {
                out.put(b"VALUE k 0 3\r\n");
                out.put_shared(Bytes::from_static(b"abc"));
                out.put(b"\r\nEND\r\n");
            }
        }
        assert_eq!(buf.segments.len(), 1, "small replies share one segment");
        let expected = 50 * (b"VALUE k 0 3\r\nabc\r\nEND\r\n".len());
        assert_eq!(buf.len(), expected);

        let mut sink = Throttled {
            accepted: Vec::new(),
            quota: usize::MAX,
            budget: usize::MAX,
        };
        buf.flush_to(&mut sink, &mut pool).unwrap();
        assert_eq!(sink.accepted.len(), expected);
        assert_eq!(pool.pooled(), 1, "flushed segment returns to the pool");

        // The next response reuses the recycled buffer: no allocation.
        let pooled_ptr = {
            let mut out = buf.with_pool(&mut pool);
            out.put(b"STORED\r\n");
            buf.segments.back().unwrap().as_slice().as_ptr()
        };
        assert_eq!(pool.pooled(), 0);
        buf.flush_to(&mut sink, &mut pool).unwrap();
        assert_eq!(pool.pooled(), 1);
        let again = pool.take();
        assert_eq!(again.as_ptr(), pooled_ptr);
    }

    #[test]
    fn large_shared_payloads_are_queued_by_reference() {
        let mut pool = test_pool();
        let mut buf = WriteBuf::new(1 << 20);
        let payload = Bytes::from(vec![b'p'; 8192]);
        let payload_ptr = payload.as_ptr();
        {
            let mut out = buf.with_pool(&mut pool);
            out.put(b"VALUE big 0 8192\r\n");
            out.put_shared(payload);
            out.put(b"\r\nEND\r\n");
        }
        assert_eq!(buf.segments.len(), 3, "header / shared payload / trailer");
        match &buf.segments[1] {
            Segment::Shared(b) => assert_eq!(b.as_ptr(), payload_ptr, "payload not copied"),
            Segment::Owned(_) => panic!("large payload must stay shared"),
        }
    }

    #[test]
    fn recycle_into_returns_segments_and_clears() {
        let mut pool = test_pool();
        let mut buf = WriteBuf::new(1 << 20);
        buf.with_pool(&mut pool).put(b"abandoned");
        buf.push_shared(Bytes::from(vec![1_u8; 2048]));
        buf.recycle_into(&mut pool);
        assert!(buf.is_empty());
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn vec_is_a_bufwrite_sink() {
        let mut out = Vec::new();
        out.put(b"VALUE k 1 2\r\n");
        out.put_shared(Bytes::from_static(b"hi"));
        out.put(b"\r\nEND\r\n");
        assert_eq!(out, b"VALUE k 1 2\r\nhi\r\nEND\r\n");
    }

    /// One scripted response of a [`Scripted`] vectored sink.
    enum Step {
        /// Consume up to this many bytes across the gathered buffers.
        Accept(usize),
        /// Fail with `EINTR` (the flush must retry transparently).
        Eintr,
        /// Fail with `EWOULDBLOCK` (the flush must stop and report it).
        Block,
    }

    /// A [`VectoredWrite`] whose behavior is scripted step by step; after
    /// the script runs out it accepts everything. Records what it consumed
    /// plus how many "syscalls" it took and the widest batch it saw.
    struct Scripted {
        steps: VecDeque<Step>,
        accepted: Vec<u8>,
        calls: usize,
        widest_batch: usize,
    }

    impl Scripted {
        fn new(steps: Vec<Step>) -> Scripted {
            Scripted {
                steps: steps.into(),
                accepted: Vec::new(),
                calls: 0,
                widest_batch: 0,
            }
        }
    }

    impl VectoredWrite for Scripted {
        fn writev(&mut self, bufs: &[&[u8]]) -> io::Result<usize> {
            self.calls += 1;
            self.widest_batch = self.widest_batch.max(bufs.len());
            match self.steps.pop_front().unwrap_or(Step::Accept(usize::MAX)) {
                Step::Eintr => Err(io::Error::new(io::ErrorKind::Interrupted, "signal")),
                Step::Block => Err(io::Error::new(io::ErrorKind::WouldBlock, "full")),
                Step::Accept(mut quota) => {
                    let mut n = 0;
                    for buf in bufs {
                        let take = buf.len().min(quota);
                        self.accepted.extend_from_slice(&buf[..take]);
                        n += take;
                        quota -= take;
                        if quota == 0 {
                            break;
                        }
                    }
                    Ok(n)
                }
            }
        }
    }

    /// Three segments the coalescer cannot merge: pooled header, shared
    /// payload (above the coalesce limit), pooled trailer — the exact
    /// shape a large-value GET reply queues.
    fn three_segment_buf(pool: &mut BufPool) -> (WriteBuf, Vec<u8>) {
        let mut buf = WriteBuf::new(1 << 20);
        let payload = vec![b'p'; COALESCE_LIMIT + 1];
        {
            let mut out = buf.with_pool(pool);
            out.put(b"VALUE big 0 1025\r\n");
            out.put_shared(Bytes::from(payload.clone()));
            out.put(b"\r\nEND\r\n");
        }
        assert_eq!(buf.segments.len(), 3);
        let mut wire = b"VALUE big 0 1025\r\n".to_vec();
        wire.extend_from_slice(&payload);
        wire.extend_from_slice(b"\r\nEND\r\n");
        (buf, wire)
    }

    #[test]
    fn vectored_flush_batches_every_segment_into_one_syscall() {
        let mut pool = test_pool();
        let (mut buf, wire) = three_segment_buf(&mut pool);
        let mut sink = Scripted::new(Vec::new());
        assert_eq!(
            buf.flush_vectored(&mut sink, &mut pool).unwrap(),
            FlushState::Drained
        );
        assert_eq!(sink.accepted, wire);
        assert_eq!(sink.calls, 1, "three segments, one writev");
        assert_eq!(sink.widest_batch, 3);
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_writev_resumes_at_every_split_boundary() {
        let mut pool = test_pool();
        let total = three_segment_buf(&mut pool).1.len();
        // Cut the batch at every possible byte boundary — including both
        // segment edges and every mid-segment position — and verify the
        // cursor resumes exactly where the kernel stopped.
        for cut in 1..total {
            let (mut buf, wire) = three_segment_buf(&mut pool);
            let mut sink = Scripted::new(vec![Step::Accept(cut)]);
            assert_eq!(
                buf.flush_vectored(&mut sink, &mut pool).unwrap(),
                FlushState::Drained,
                "cut at {cut}"
            );
            assert_eq!(sink.accepted, wire, "cut at {cut} lost or reordered bytes");
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn eintr_mid_iovec_retries_without_losing_the_cursor() {
        let mut pool = test_pool();
        let (mut buf, wire) = three_segment_buf(&mut pool);
        let mut sink = Scripted::new(vec![Step::Accept(100), Step::Eintr, Step::Eintr]);
        assert_eq!(
            buf.flush_vectored(&mut sink, &mut pool).unwrap(),
            FlushState::Drained
        );
        assert_eq!(sink.accepted, wire);
        assert_eq!(sink.calls, 4, "partial, two EINTRs, final drain");
    }

    #[test]
    fn would_block_with_a_half_consumed_segment_resumes_cleanly() {
        let mut pool = test_pool();
        let (mut buf, wire) = three_segment_buf(&mut pool);
        // Stop halfway through the shared middle segment, then block.
        let half = wire.len() / 2;
        let mut sink = Scripted::new(vec![Step::Accept(half), Step::Block]);
        assert_eq!(
            buf.flush_vectored(&mut sink, &mut pool).unwrap(),
            FlushState::Blocked
        );
        assert_eq!(buf.len(), wire.len() - half);
        // Writability returns: the rest goes out from the saved cursor.
        assert_eq!(
            buf.flush_vectored(&mut sink, &mut pool).unwrap(),
            FlushState::Drained
        );
        assert_eq!(sink.accepted, wire);
    }

    #[test]
    fn batches_wider_than_max_iovecs_take_multiple_syscalls() {
        let mut pool = test_pool();
        let mut buf = WriteBuf::new(1 << 20);
        for i in 0..(MAX_IOVECS + 6) {
            // push_shared never coalesces, so each reply is its own segment.
            buf.push_shared(Bytes::from(format!("seg-{i};")));
        }
        let mut sink = Scripted::new(Vec::new());
        assert_eq!(
            buf.flush_vectored(&mut sink, &mut pool).unwrap(),
            FlushState::Drained
        );
        assert_eq!(sink.calls, 2);
        assert_eq!(sink.widest_batch, MAX_IOVECS);
        assert!(sink.accepted.starts_with(b"seg-0;seg-1;"));
        assert!(sink
            .accepted
            .ends_with(format!("seg-{};", MAX_IOVECS + 5).as_bytes()));
    }

    #[test]
    fn flush_counters_prove_fewer_syscalls_than_segments() {
        // The counters are process-global; concurrent tests only inflate
        // them, so assert on deltas with ≥.
        let net = &rp_obs::global().net;
        let syscalls_before = net.flush_syscalls_total.get();
        let segments_before = net.flush_segments_total.get();
        let mut pool = test_pool();
        let (mut buf, _) = three_segment_buf(&mut pool);
        let mut sink = Scripted::new(Vec::new());
        buf.flush_vectored(&mut sink, &mut pool).unwrap();
        assert!(net.flush_syscalls_total.get() > syscalls_before);
        assert!(net.flush_segments_total.get() >= segments_before + 3);
    }

    #[test]
    fn fd_sink_gathers_over_a_real_socket() {
        use std::io::Read;
        use std::os::unix::io::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        let mut pool = test_pool();
        let (mut buf, wire) = three_segment_buf(&mut pool);
        let mut sink = FdSink { fd: tx.as_raw_fd() };
        assert_eq!(
            buf.flush_vectored(&mut sink, &mut pool).unwrap(),
            FlushState::Drained
        );
        let mut got = vec![0_u8; wire.len()];
        rx.read_exact(&mut got).unwrap();
        assert_eq!(got, wire);
    }
}
