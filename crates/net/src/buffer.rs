//! Per-connection output buffering with partial-write tracking, a
//! backpressure watermark, and pooled zero-allocation response writes.

use std::collections::VecDeque;
use std::io::{self, Write};

use bytes::Bytes;

use crate::pool::BufPool;

/// A byte sink responses are serialised into directly.
///
/// This is the seam that makes the serving hot path allocation-free:
/// protocol code writes headers and payloads *into* the connection's
/// [`WriteBuf`] (via [`PooledBuf`], which recycles segment buffers through
/// the worker's [`BufPool`]) instead of assembling a fresh `Vec<u8>` per
/// response and copying it in. `Vec<u8>` implements the trait too, so the
/// same serialisation code serves buffered baseline paths and tests.
pub trait BufWrite {
    /// Appends raw bytes to the sink.
    fn put(&mut self, bytes: &[u8]);

    /// Appends a reference-counted segment. Implementations may copy small
    /// segments (keeping pipelined replies in one `write(2)`) and queue
    /// large ones by reference without copying the payload.
    fn put_shared(&mut self, bytes: Bytes);
}

impl BufWrite for Vec<u8> {
    fn put(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }

    fn put_shared(&mut self, bytes: Bytes) {
        self.extend_from_slice(&bytes);
    }
}

/// Result of flushing a [`WriteBuf`] to a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushState {
    /// Every queued byte reached the kernel.
    Drained,
    /// The socket's send buffer filled up; the caller should request
    /// `EPOLLOUT` and retry when the socket becomes writable again.
    Blocked,
}

/// A queue of response segments awaiting transmission.
///
/// Responses are pushed as whole segments ([`Vec<u8>`] or [`Bytes`]) or
/// written incrementally through [`PooledBuf`]; [`WriteBuf::flush_to`]
/// writes them out honouring short writes — a partially written front
/// segment is resumed at its cursor, never re-sent — and returns finished
/// owned segments to the worker's [`BufPool`] so steady-state serving
/// allocates nothing. Small segments are coalesced into the tail to keep
/// pipelined replies from degenerating into one tiny `write(2)` each.
pub struct WriteBuf {
    segments: VecDeque<Segment>,
    /// Bytes of the front segment already written.
    cursor: usize,
    /// Total unwritten bytes across all segments.
    len: usize,
    high_watermark: usize,
}

enum Segment {
    Owned(Vec<u8>),
    Shared(Bytes),
}

impl Segment {
    fn as_slice(&self) -> &[u8] {
        match self {
            Segment::Owned(v) => v,
            Segment::Shared(b) => b,
        }
    }
}

/// Below this size a pushed segment is copied into the previous tail
/// segment instead of queued separately.
pub(crate) const COALESCE_LIMIT: usize = 1024;

/// An owned tail segment stops accepting appended bytes once it holds this
/// much; the next write starts a fresh (pooled) segment. Bounds how much
/// capacity a single recycled buffer can accrete.
const SEGMENT_SPLIT: usize = 32 * 1024;

impl WriteBuf {
    /// Creates an empty buffer. `high_watermark` is the queue size (bytes)
    /// above which [`WriteBuf::over_watermark`] reports backpressure.
    pub fn new(high_watermark: usize) -> WriteBuf {
        WriteBuf {
            segments: VecDeque::new(),
            cursor: 0,
            len: 0,
            high_watermark: high_watermark.max(1),
        }
    }

    /// Queues an owned segment.
    pub fn push(&mut self, bytes: Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        if bytes.len() <= COALESCE_LIMIT {
            // Appending to the tail is safe even when the tail is also the
            // part-written front: the cursor indexes the front segment and
            // the new bytes land beyond it.
            if let Some(Segment::Owned(tail)) = self.segments.back_mut() {
                tail.extend_from_slice(&bytes);
                return;
            }
        }
        self.segments.push_back(Segment::Owned(bytes));
    }

    /// Queues a shared segment without copying it.
    pub fn push_shared(&mut self, bytes: Bytes) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        self.segments.push_back(Segment::Shared(bytes));
    }

    /// Appends raw bytes to the owned tail segment, starting a new segment
    /// from `pool` when the tail is shared, full, or absent. This is the
    /// allocation-free write primitive behind [`PooledBuf::put`].
    fn put_pooled(&mut self, bytes: &[u8], pool: &mut BufPool) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        match self.segments.back_mut() {
            Some(Segment::Owned(tail)) if tail.len() < SEGMENT_SPLIT => {
                tail.extend_from_slice(bytes);
            }
            _ => {
                let mut seg = pool.take();
                seg.extend_from_slice(bytes);
                self.segments.push_back(Segment::Owned(seg));
            }
        }
    }

    /// Borrows the buffer together with the worker's segment pool as a
    /// [`BufWrite`] sink.
    pub fn with_pool<'a>(&'a mut self, pool: &'a mut BufPool) -> PooledBuf<'a> {
        PooledBuf { buf: self, pool }
    }

    /// Unwritten bytes queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when the queue exceeds the high watermark — the signal to
    /// stop reading (and thus stop producing responses) until the peer
    /// drains what it already owes us.
    pub fn over_watermark(&self) -> bool {
        self.len > self.high_watermark
    }

    /// Writes as much queued data as the socket accepts.
    ///
    /// Retries on `EINTR`, resumes partial writes at the saved cursor,
    /// returns [`FlushState::Blocked`] on `EWOULDBLOCK`, and surfaces any
    /// other error (a zero-length write is reported as `WriteZero`). Owned
    /// segments that finish flushing are recycled into `pool`.
    pub fn flush_to(
        &mut self,
        sink: &mut impl Write,
        pool: &mut BufPool,
    ) -> io::Result<FlushState> {
        while let Some(front) = self.segments.front() {
            let pending = &front.as_slice()[self.cursor..];
            debug_assert!(!pending.is_empty());
            match sink.write(pending) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.cursor += n;
                    self.len -= n;
                    if self.cursor == front.as_slice().len() {
                        if let Some(Segment::Owned(done)) = self.segments.pop_front() {
                            pool.give(done);
                        }
                        self.cursor = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(FlushState::Blocked),
                Err(e) => return Err(e),
            }
        }
        Ok(FlushState::Drained)
    }

    /// Returns every queued segment's buffer to `pool` (connection
    /// teardown; unwritten bytes are abandoned).
    pub(crate) fn recycle_into(&mut self, pool: &mut BufPool) {
        while let Some(seg) = self.segments.pop_front() {
            if let Segment::Owned(buf) = seg {
                pool.give(buf);
            }
        }
        self.cursor = 0;
        self.len = 0;
    }
}

/// A [`WriteBuf`] borrowed together with its worker's [`BufPool`]: the
/// [`BufWrite`] sink handed to services, writing straight into the
/// connection's output queue with pooled segment buffers.
pub struct PooledBuf<'a> {
    buf: &'a mut WriteBuf,
    pool: &'a mut BufPool,
}

impl PooledBuf<'_> {
    /// Unwritten bytes queued on the underlying [`WriteBuf`].
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl BufWrite for PooledBuf<'_> {
    fn put(&mut self, bytes: &[u8]) {
        self.buf.put_pooled(bytes, self.pool);
    }

    fn put_shared(&mut self, bytes: Bytes) {
        // Small payloads coalesce into the tail (one write(2) covers many
        // pipelined replies); large ones are queued by reference so the
        // payload is never copied.
        if bytes.len() <= COALESCE_LIMIT {
            self.put(&bytes);
        } else {
            self.buf.push_shared(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_pool() -> BufPool {
        BufPool::new(16, 1 << 20)
    }

    /// A sink that accepts at most `quota` bytes per write call and can be
    /// told to report `WouldBlock` after a total budget.
    struct Throttled {
        accepted: Vec<u8>,
        quota: usize,
        budget: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.quota).min(self.budget);
            self.accepted.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_resume_at_the_cursor() {
        let mut pool = test_pool();
        let mut buf = WriteBuf::new(1 << 20);
        buf.push(b"hello ".to_vec());
        buf.push_shared(Bytes::from_static(b"world"));
        let mut sink = Throttled {
            accepted: Vec::new(),
            quota: 3,
            budget: usize::MAX,
        };
        assert_eq!(
            buf.flush_to(&mut sink, &mut pool).unwrap(),
            FlushState::Drained
        );
        assert_eq!(sink.accepted, b"hello world");
        assert!(buf.is_empty());
    }

    #[test]
    fn would_block_preserves_unwritten_bytes() {
        let mut pool = test_pool();
        let mut buf = WriteBuf::new(1 << 20);
        buf.push(vec![b'x'; 2000]);
        buf.push(vec![b'y'; 2000]);
        let mut sink = Throttled {
            accepted: Vec::new(),
            quota: 512,
            budget: 1500,
        };
        assert_eq!(
            buf.flush_to(&mut sink, &mut pool).unwrap(),
            FlushState::Blocked
        );
        assert_eq!(buf.len(), 2500);
        // Unblock and finish.
        sink.budget = usize::MAX;
        assert_eq!(
            buf.flush_to(&mut sink, &mut pool).unwrap(),
            FlushState::Drained
        );
        assert_eq!(sink.accepted.len(), 4000);
        assert_eq!(&sink.accepted[..2000], &vec![b'x'; 2000][..]);
        assert_eq!(&sink.accepted[2000..], &vec![b'y'; 2000][..]);
    }

    #[test]
    fn small_pushes_coalesce() {
        let mut buf = WriteBuf::new(1 << 20);
        for _ in 0..100 {
            buf.push(b"END\r\n".to_vec());
        }
        assert_eq!(buf.len(), 500);
        assert!(
            buf.segments.len() <= 2,
            "expected coalescing, got {} segments",
            buf.segments.len()
        );
    }

    #[test]
    fn watermark_reports_backpressure() {
        let mut pool = test_pool();
        let mut buf = WriteBuf::new(100);
        assert!(!buf.over_watermark());
        buf.push(vec![0; 101]);
        assert!(buf.over_watermark());
        let mut sink = Throttled {
            accepted: Vec::new(),
            quota: usize::MAX,
            budget: usize::MAX,
        };
        buf.flush_to(&mut sink, &mut pool).unwrap();
        assert!(!buf.over_watermark());
    }

    #[test]
    fn pooled_writes_coalesce_and_recycle_through_the_pool() {
        let mut pool = test_pool();
        let mut buf = WriteBuf::new(1 << 20);
        {
            let mut out = buf.with_pool(&mut pool);
            for _ in 0..50 {
                out.put(b"VALUE k 0 3\r\n");
                out.put_shared(Bytes::from_static(b"abc"));
                out.put(b"\r\nEND\r\n");
            }
        }
        assert_eq!(buf.segments.len(), 1, "small replies share one segment");
        let expected = 50 * (b"VALUE k 0 3\r\nabc\r\nEND\r\n".len());
        assert_eq!(buf.len(), expected);

        let mut sink = Throttled {
            accepted: Vec::new(),
            quota: usize::MAX,
            budget: usize::MAX,
        };
        buf.flush_to(&mut sink, &mut pool).unwrap();
        assert_eq!(sink.accepted.len(), expected);
        assert_eq!(pool.pooled(), 1, "flushed segment returns to the pool");

        // The next response reuses the recycled buffer: no allocation.
        let pooled_ptr = {
            let mut out = buf.with_pool(&mut pool);
            out.put(b"STORED\r\n");
            buf.segments.back().unwrap().as_slice().as_ptr()
        };
        assert_eq!(pool.pooled(), 0);
        buf.flush_to(&mut sink, &mut pool).unwrap();
        assert_eq!(pool.pooled(), 1);
        let again = pool.take();
        assert_eq!(again.as_ptr(), pooled_ptr);
    }

    #[test]
    fn large_shared_payloads_are_queued_by_reference() {
        let mut pool = test_pool();
        let mut buf = WriteBuf::new(1 << 20);
        let payload = Bytes::from(vec![b'p'; 8192]);
        let payload_ptr = payload.as_ptr();
        {
            let mut out = buf.with_pool(&mut pool);
            out.put(b"VALUE big 0 8192\r\n");
            out.put_shared(payload);
            out.put(b"\r\nEND\r\n");
        }
        assert_eq!(buf.segments.len(), 3, "header / shared payload / trailer");
        match &buf.segments[1] {
            Segment::Shared(b) => assert_eq!(b.as_ptr(), payload_ptr, "payload not copied"),
            Segment::Owned(_) => panic!("large payload must stay shared"),
        }
    }

    #[test]
    fn recycle_into_returns_segments_and_clears() {
        let mut pool = test_pool();
        let mut buf = WriteBuf::new(1 << 20);
        buf.with_pool(&mut pool).put(b"abandoned");
        buf.push_shared(Bytes::from(vec![1_u8; 2048]));
        buf.recycle_into(&mut pool);
        assert!(buf.is_empty());
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn vec_is_a_bufwrite_sink() {
        let mut out = Vec::new();
        out.put(b"VALUE k 1 2\r\n");
        out.put_shared(Bytes::from_static(b"hi"));
        out.put(b"\r\nEND\r\n");
        assert_eq!(out, b"VALUE k 1 2\r\nhi\r\nEND\r\n");
    }
}
