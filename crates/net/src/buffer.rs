//! Per-connection output buffering with partial-write tracking and a
//! backpressure watermark.

use std::collections::VecDeque;
use std::io::{self, Write};

use bytes::Bytes;

/// Result of flushing a [`WriteBuf`] to a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushState {
    /// Every queued byte reached the kernel.
    Drained,
    /// The socket's send buffer filled up; the caller should request
    /// `EPOLLOUT` and retry when the socket becomes writable again.
    Blocked,
}

/// A queue of response segments awaiting transmission.
///
/// Responses are pushed as whole segments ([`Vec<u8>`] or [`Bytes`]);
/// [`WriteBuf::flush_to`] writes them out honouring short writes — a
/// partially written front segment is resumed at its cursor, never
/// re-sent. Small segments are coalesced into the tail to keep pipelined
/// replies from degenerating into one tiny `write(2)` each.
pub struct WriteBuf {
    segments: VecDeque<Segment>,
    /// Bytes of the front segment already written.
    cursor: usize,
    /// Total unwritten bytes across all segments.
    len: usize,
    high_watermark: usize,
}

enum Segment {
    Owned(Vec<u8>),
    Shared(Bytes),
}

impl Segment {
    fn as_slice(&self) -> &[u8] {
        match self {
            Segment::Owned(v) => v,
            Segment::Shared(b) => b,
        }
    }
}

/// Below this size a pushed segment is copied into the previous tail
/// segment instead of queued separately.
const COALESCE_LIMIT: usize = 1024;

impl WriteBuf {
    /// Creates an empty buffer. `high_watermark` is the queue size (bytes)
    /// above which [`WriteBuf::over_watermark`] reports backpressure.
    pub fn new(high_watermark: usize) -> WriteBuf {
        WriteBuf {
            segments: VecDeque::new(),
            cursor: 0,
            len: 0,
            high_watermark: high_watermark.max(1),
        }
    }

    /// Queues an owned segment.
    pub fn push(&mut self, bytes: Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        if bytes.len() <= COALESCE_LIMIT {
            // Appending to the tail is safe even when the tail is also the
            // part-written front: the cursor indexes the front segment and
            // the new bytes land beyond it.
            if let Some(Segment::Owned(tail)) = self.segments.back_mut() {
                tail.extend_from_slice(&bytes);
                return;
            }
        }
        self.segments.push_back(Segment::Owned(bytes));
    }

    /// Queues a shared segment without copying it.
    pub fn push_shared(&mut self, bytes: Bytes) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        self.segments.push_back(Segment::Shared(bytes));
    }

    /// Unwritten bytes queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when the queue exceeds the high watermark — the signal to
    /// stop reading (and thus stop producing responses) until the peer
    /// drains what it already owes us.
    pub fn over_watermark(&self) -> bool {
        self.len > self.high_watermark
    }

    /// Writes as much queued data as the socket accepts.
    ///
    /// Retries on `EINTR`, resumes partial writes at the saved cursor,
    /// returns [`FlushState::Blocked`] on `EWOULDBLOCK`, and surfaces any
    /// other error (a zero-length write is reported as `WriteZero`).
    pub fn flush_to(&mut self, sink: &mut impl Write) -> io::Result<FlushState> {
        while let Some(front) = self.segments.front() {
            let pending = &front.as_slice()[self.cursor..];
            debug_assert!(!pending.is_empty());
            match sink.write(pending) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.cursor += n;
                    self.len -= n;
                    if self.cursor == front.as_slice().len() {
                        self.segments.pop_front();
                        self.cursor = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(FlushState::Blocked),
                Err(e) => return Err(e),
            }
        }
        Ok(FlushState::Drained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that accepts at most `quota` bytes per write call and can be
    /// told to report `WouldBlock` after a total budget.
    struct Throttled {
        accepted: Vec<u8>,
        quota: usize,
        budget: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.quota).min(self.budget);
            self.accepted.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_resume_at_the_cursor() {
        let mut buf = WriteBuf::new(1 << 20);
        buf.push(b"hello ".to_vec());
        buf.push_shared(Bytes::from_static(b"world"));
        let mut sink = Throttled {
            accepted: Vec::new(),
            quota: 3,
            budget: usize::MAX,
        };
        assert_eq!(buf.flush_to(&mut sink).unwrap(), FlushState::Drained);
        assert_eq!(sink.accepted, b"hello world");
        assert!(buf.is_empty());
    }

    #[test]
    fn would_block_preserves_unwritten_bytes() {
        let mut buf = WriteBuf::new(1 << 20);
        buf.push(vec![b'x'; 2000]);
        buf.push(vec![b'y'; 2000]);
        let mut sink = Throttled {
            accepted: Vec::new(),
            quota: 512,
            budget: 1500,
        };
        assert_eq!(buf.flush_to(&mut sink).unwrap(), FlushState::Blocked);
        assert_eq!(buf.len(), 2500);
        // Unblock and finish.
        sink.budget = usize::MAX;
        assert_eq!(buf.flush_to(&mut sink).unwrap(), FlushState::Drained);
        assert_eq!(sink.accepted.len(), 4000);
        assert_eq!(&sink.accepted[..2000], &vec![b'x'; 2000][..]);
        assert_eq!(&sink.accepted[2000..], &vec![b'y'; 2000][..]);
    }

    #[test]
    fn small_pushes_coalesce() {
        let mut buf = WriteBuf::new(1 << 20);
        for _ in 0..100 {
            buf.push(b"END\r\n".to_vec());
        }
        assert_eq!(buf.len(), 500);
        assert!(
            buf.segments.len() <= 2,
            "expected coalescing, got {} segments",
            buf.segments.len()
        );
    }

    #[test]
    fn watermark_reports_backpressure() {
        let mut buf = WriteBuf::new(100);
        assert!(!buf.over_watermark());
        buf.push(vec![0; 101]);
        assert!(buf.over_watermark());
        let mut sink = Throttled {
            accepted: Vec::new(),
            quota: usize::MAX,
            budget: usize::MAX,
        };
        buf.flush_to(&mut sink).unwrap();
        assert!(!buf.over_watermark());
    }
}
