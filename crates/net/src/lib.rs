//! # rp-net
//!
//! A dependency-free epoll event-loop server for the kvcache front end.
//!
//! The thread-per-connection server caps the connection count long before
//! the relativistic hash table does: ten thousand mostly idle clients cost
//! ten thousand stacks and scheduler entries. This crate replaces that
//! model with a classic readiness-driven reactor:
//!
//! * [`sys`] — raw `extern "C"` declarations of `epoll_create1` /
//!   `epoll_ctl` / `epoll_wait` / `fcntl` / `eventfd` / `writev` against
//!   the system libc (the build environment has no crates.io access, so no
//!   `libc` or `mio` dependency).
//! * [`Poller`] — one epoll instance; [`Waker`] — an eventfd that
//!   interrupts a blocked wait from another thread.
//! * [`WriteBuf`] — the per-connection output queue: partial writes resume
//!   at a cursor, small pipelined replies coalesce, and every flush
//!   submits all queued segments as one `writev(2)` iovec batch (one
//!   syscall per readiness event, not one per reply). A high watermark
//!   signals backpressure (the reactor stops *reading* from a peer that is
//!   not draining its responses).
//! * [`ByteBudget`] — process-wide admission control: one ledger of
//!   buffered bytes shared by every worker. Accepts are refused while it
//!   is exhausted, and open connections get their reads paused until it
//!   recovers, so total buffer memory is bounded no matter how many slow
//!   readers connect.
//! * [`BufWrite`] + [`BufPool`] — the zero-allocation response path:
//!   services serialise replies *directly* into the connection's output
//!   queue through a pooled sink, and finished segment buffers recycle
//!   through a per-worker free list (bounded, so idle connections pin no
//!   warm buffers).
//! * A per-connection state machine (`Open → Draining → Closed`) driving
//!   incremental reads, pipelined writes, graceful shutdown, and the
//!   defensive limits a public-facing deployment needs ([`NetConfig`]'s
//!   `idle_timeout` and `max_requests_per_conn`).
//! * [`EventLoop`] — N worker threads, each with its own poller and
//!   connection table. All workers register the *single* listening socket
//!   with `EPOLLEXCLUSIVE`, so the kernel shards accepts across workers
//!   (`SO_REUSEPORT`-style without the extra sockets). The server never
//!   spawns another thread, no matter how many connections arrive.
//!
//! Applications plug in with the [`Service`] trait; each accepted
//! connection gets a `Service::Conn` value for protocol state (e.g. an
//! incremental request decoder), and `Service::on_data` consumes raw bytes
//! from [`ConnIo::input`] — borrowing slices straight out of the read
//! buffer — and writes response bytes into [`ConnIo::out`]:
//!
//! ```
//! use std::sync::Arc;
//! use rp_net::{Action, BufWrite, ConnIo, EventLoop, NetConfig, Service};
//!
//! /// Upper-cases every line it receives.
//! struct Shout;
//! impl Service for Shout {
//!     type Conn = ();
//!     type Worker = ();
//!     fn on_worker_start(&self, _worker: usize) {}
//!     fn on_connect(&self, _peer: std::net::SocketAddr) {}
//!     fn on_data(&self, _worker: &mut (), _conn: &mut (), io: &mut ConnIo<'_>) -> Action {
//!         let shouted: Vec<u8> = io.input.iter().map(u8::to_ascii_uppercase).collect();
//!         io.input.clear();
//!         io.out.put(&shouted);
//!         io.requests += 1;
//!         Action::Continue
//!     }
//! }
//!
//! let mut server = EventLoop::bind(
//!     "127.0.0.1:0".parse().unwrap(),
//!     Arc::new(Shout),
//!     NetConfig::default(),
//! ).unwrap();
//!
//! use std::io::{Read, Write};
//! let mut client = std::net::TcpStream::connect(server.addr()).unwrap();
//! client.write_all(b"hello\n").unwrap();
//! let mut reply = [0_u8; 6];
//! client.read_exact(&mut reply).unwrap();
//! assert_eq!(&reply, b"HELLO\n");
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod budget;
mod buffer;
mod conn;
mod poller;
mod pool;
mod server;
pub mod sys;

pub use budget::ByteBudget;
pub use buffer::{BufWrite, FlushState, PooledBuf, VectoredWrite, WriteBuf};
pub use poller::{waker_pair, Event, Poller, WakeReceiver, Waker};
pub use pool::BufPool;
pub use server::{EventLoop, NetStats};

use std::net::SocketAddr;
use std::time::Duration;

/// What the service wants done with a connection after handling input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep the connection open.
    Continue,
    /// Flush any queued responses, then close (e.g. the client sent
    /// `quit`, or the protocol was violated beyond recovery).
    Close,
}

/// The I/O view a service gets for one [`Service::on_data`] call.
///
/// The fields are deliberately public and disjoint so a service can hold a
/// borrow *into* `input` (a request parsed in place, keys as sub-slices of
/// the read buffer) while simultaneously writing the response through
/// `out` and bumping `requests` — the borrow checker verifies the
/// zero-copy discipline field by field.
pub struct ConnIo<'a> {
    /// Everything received but not yet consumed. The service removes the
    /// bytes it used (a frame may arrive across many reads — unconsumed
    /// bytes are presented again, extended, after the next read).
    pub input: &'a mut Vec<u8>,
    /// The response sink: writes go straight into the connection's
    /// [`WriteBuf`] with segment buffers recycled through the worker's
    /// [`BufPool`].
    pub out: PooledBuf<'a>,
    /// Complete requests the service consumed in this call. The reactor
    /// accumulates this into the connection's served-request count, which
    /// drives [`NetConfig::max_requests_per_conn`].
    pub requests: u64,
    /// How many more requests this connection may be served before its
    /// budget ([`NetConfig::max_requests_per_conn`]) is exhausted
    /// (`u64::MAX` when unlimited). A well-behaved service stops consuming
    /// once `requests` reaches this quota — anything already answered when
    /// the budget trips is still flushed, but a pipelining peer cannot
    /// overdraw the budget within a single batch.
    pub request_quota: u64,
}

/// A protocol handler driven by the event loop.
///
/// One `Service` value is shared by every worker thread (it must be cheap
/// to call concurrently); per-connection state lives in `Service::Conn`,
/// and per-*worker* state — created on the worker thread itself — lives in
/// `Service::Worker`.
///
/// The worker lifecycle hooks exist because reactor workers are pinned
/// threads with a natural rhythm: wake from `epoll_wait`, service a batch
/// of events, park again. Protocol handlers can attach per-thread resources
/// to that rhythm — the kvcache server registers a QSBR read handle per
/// worker ([`Service::on_worker_start`]), announces a quiescent state once
/// per event batch ([`Service::on_batch_end`]), and goes offline while
/// parked ([`Service::on_park`] / [`Service::on_unpark`]), which is the
/// textbook quiescent-state-based RCU deployment.
pub trait Service: Send + Sync + 'static {
    /// Per-connection protocol state (parser position, session flags, …).
    type Conn: Send + 'static;

    /// Per-worker state. Created by [`Service::on_worker_start`] **on the
    /// worker thread**, so it may hold thread-pinned (`!Send`) resources
    /// such as read-side registration handles; it never leaves the worker.
    type Worker: 'static;

    /// Called once on each worker thread before its event loop starts.
    fn on_worker_start(&self, worker: usize) -> Self::Worker;

    /// Called once per accepted connection.
    fn on_connect(&self, peer: SocketAddr) -> Self::Conn;

    /// Called whenever new bytes arrive, with the connection's I/O view
    /// ([`ConnIo`]): consume complete frames from `io.input` (borrowing
    /// from the buffer is encouraged — decode in place, drain afterwards),
    /// write responses into `io.out`, and report consumed requests in
    /// `io.requests`. Responses may cover several pipelined requests.
    fn on_data(
        &self,
        worker: &mut Self::Worker,
        conn: &mut Self::Conn,
        io: &mut ConnIo<'_>,
    ) -> Action;

    /// Called after each batch of readiness events has been fully serviced
    /// (all responses queued and flushed as far as the sockets allow). The
    /// worker holds no connection state across this call.
    fn on_batch_end(&self, _worker: &mut Self::Worker) {}

    /// Called immediately before the worker blocks in `epoll_wait`.
    fn on_park(&self, _worker: &mut Self::Worker) {}

    /// Called immediately after the worker wakes from `epoll_wait`.
    fn on_unpark(&self, _worker: &mut Self::Worker) {}
}

/// Reactor tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Worker threads (and epoll instances). The server's entire thread
    /// budget — connections never get their own.
    pub workers: usize,
    /// Per-`epoll_wait` event batch size.
    pub events_per_wait: usize,
    /// Bytes read per `read(2)` call.
    pub read_chunk: usize,
    /// Max bytes read from one connection per readiness event before other
    /// connections get a turn (level-triggered epoll re-arms the rest).
    pub read_budget: usize,
    /// Output-queue size above which the reactor stops reading from the
    /// connection until the peer drains its responses.
    pub high_watermark: usize,
    /// Maximum concurrent connections; accepts beyond it are shed (the
    /// peer gets [`NetConfig::shed_reply`], then a close).
    pub max_connections: usize,
    /// Process-wide cap on bytes buffered across *all* connections (input
    /// plus queued responses). At the cap, new accepts are shed and open
    /// connections stop reading until the ledger drains below ⅞ of the
    /// cap. `usize::MAX` (the default) disables the budget.
    pub max_total_bytes: usize,
    /// Best-effort bytes written to a connection shed at admission before
    /// it is closed, so the peer sees *why* instead of a bare reset (e.g.
    /// `SERVER_ERROR busy\r\n` for a memcache-flavored service). Empty
    /// (the default) sheds silently.
    pub shed_reply: Vec<u8>,
    /// Queued toward a connection whose handler panicked, before the
    /// connection is shed (the panic is contained: the worker keeps
    /// serving its other connections). Empty (the default) sheds silently.
    pub panic_reply: Vec<u8>,
    /// How long graceful shutdown keeps flushing queued responses before
    /// force-closing stragglers. Also the deadline for a *single*
    /// connection stuck in its drain during normal operation: a peer that
    /// never reads its final responses is force-closed once the flush has
    /// been pending this long.
    pub drain_timeout: Duration,
    /// How long the listener stays disarmed after `accept()` returns
    /// EMFILE/ENFILE (fd-table exhaustion). Without the backoff a
    /// level-triggered listener would re-fire instantly and spin the
    /// worker at 100% while accepting nothing.
    pub accept_backoff: Duration,
    /// Close a connection that has made no progress (no bytes read from
    /// it, no response bytes flushed to it) for this long. `None` (the
    /// default) never reaps.
    pub idle_timeout: Option<Duration>,
    /// Close a connection after it has been served this many requests
    /// (queued responses still flush first) — a per-connection budget that
    /// bounds what any single peer can extract from one accept, like
    /// HTTP's max keep-alive requests. `None` (the default) is unlimited.
    pub max_requests_per_conn: Option<u64>,
    /// Per-worker buffer pool: at most this many recycled buffers are
    /// retained (the cap that keeps thousands of idle connections from
    /// pinning thousands of warm buffers).
    pub pool_buffers: usize,
    /// Per-buffer capacity cap for the pool; a buffer that grew beyond
    /// this (one huge response) is dropped instead of pooled.
    pub pool_buffer_capacity: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 2,
            events_per_wait: 256,
            read_chunk: 16 * 1024,
            read_budget: 256 * 1024,
            high_watermark: 1024 * 1024,
            max_connections: usize::MAX,
            max_total_bytes: usize::MAX,
            shed_reply: Vec::new(),
            panic_reply: Vec::new(),
            drain_timeout: Duration::from_secs(5),
            accept_backoff: Duration::from_millis(50),
            idle_timeout: None,
            max_requests_per_conn: None,
            pool_buffers: 64,
            pool_buffer_capacity: 256 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Echoes complete `\n`-terminated lines; `quit\n` closes.
    struct LineEcho {
        connects: AtomicUsize,
    }

    impl Service for LineEcho {
        type Conn = ();
        type Worker = ();
        fn on_worker_start(&self, _worker: usize) {}
        fn on_connect(&self, _peer: SocketAddr) {
            self.connects.fetch_add(1, Ordering::Relaxed);
        }
        fn on_data(&self, _worker: &mut (), _conn: &mut (), io: &mut ConnIo<'_>) -> Action {
            let mut consumed = 0;
            while io.requests < io.request_quota {
                let Some(pos) = io.input[consumed..].iter().position(|&b| b == b'\n') else {
                    break;
                };
                let line = &io.input[consumed..consumed + pos + 1];
                io.requests += 1;
                if line == b"quit\n" {
                    io.input.drain(..consumed + pos + 1);
                    return Action::Close;
                }
                io.out.put(line);
                consumed += pos + 1;
            }
            io.input.drain(..consumed);
            Action::Continue
        }
    }

    fn echo_service() -> Arc<LineEcho> {
        Arc::new(LineEcho {
            connects: AtomicUsize::new(0),
        })
    }

    fn start_echo(workers: usize) -> EventLoop {
        EventLoop::bind(
            "127.0.0.1:0".parse().unwrap(),
            echo_service(),
            NetConfig {
                workers,
                ..NetConfig::default()
            },
        )
        .expect("bind event loop")
    }

    #[test]
    fn echoes_lines_and_closes_on_quit() {
        let mut server = start_echo(1);
        let mut client = TcpStream::connect(server.addr()).unwrap();
        client.write_all(b"one\ntwo\n").unwrap();
        let mut buf = [0_u8; 8];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"one\ntwo\n");

        client.write_all(b"quit\n").unwrap();
        let mut rest = Vec::new();
        client.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "quit closes without echoing");
        server.shutdown();
    }

    #[test]
    fn frames_split_across_many_writes_reassemble() {
        let mut server = start_echo(2);
        let mut client = TcpStream::connect(server.addr()).unwrap();
        for &b in b"spread over many tiny writes\n" {
            client.write_all(&[b]).unwrap();
            client.flush().unwrap();
        }
        let mut buf = [0_u8; 29];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf[..], b"spread over many tiny writes\n");
        server.shutdown();
    }

    #[test]
    fn many_connections_share_two_workers() {
        let mut server = start_echo(2);
        assert_eq!(server.worker_count(), 2);
        let mut clients: Vec<TcpStream> = (0..64)
            .map(|_| TcpStream::connect(server.addr()).unwrap())
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            c.write_all(format!("client-{i}\n").as_bytes()).unwrap();
        }
        for (i, c) in clients.iter_mut().enumerate() {
            let want = format!("client-{i}\n");
            let mut buf = vec![0_u8; want.len()];
            c.read_exact(&mut buf).unwrap();
            assert_eq!(buf, want.into_bytes());
        }
        let stats = server.stats();
        assert_eq!(stats.accepted, 64);
        assert_eq!(stats.current_connections, 64);
        drop(clients);
        server.shutdown();
    }

    #[test]
    fn worker_lifecycle_hooks_fire_on_worker_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;

        struct Hooked {
            started: Mutex<HashSet<(usize, std::thread::ThreadId)>>,
            batches: AtomicUsize,
            parks: AtomicUsize,
            unparks: AtomicUsize,
        }

        impl Service for Hooked {
            type Conn = ();
            /// Worker state deliberately `!Send` to prove the reactor never
            /// moves it off its thread.
            type Worker = std::rc::Rc<std::thread::ThreadId>;

            fn on_worker_start(&self, worker: usize) -> Self::Worker {
                let id = std::thread::current().id();
                self.started.lock().unwrap().insert((worker, id));
                std::rc::Rc::new(id)
            }
            fn on_connect(&self, _peer: SocketAddr) {}
            fn on_data(
                &self,
                worker: &mut Self::Worker,
                _conn: &mut (),
                io: &mut ConnIo<'_>,
            ) -> Action {
                assert_eq!(**worker, std::thread::current().id());
                let bytes = std::mem::take(io.input);
                io.out.put(&bytes);
                Action::Continue
            }
            fn on_batch_end(&self, worker: &mut Self::Worker) {
                assert_eq!(**worker, std::thread::current().id());
                self.batches.fetch_add(1, Ordering::Relaxed);
            }
            fn on_park(&self, _worker: &mut Self::Worker) {
                self.parks.fetch_add(1, Ordering::Relaxed);
            }
            fn on_unpark(&self, _worker: &mut Self::Worker) {
                self.unparks.fetch_add(1, Ordering::Relaxed);
            }
        }

        let service = Arc::new(Hooked {
            started: Mutex::new(HashSet::new()),
            batches: AtomicUsize::new(0),
            parks: AtomicUsize::new(0),
            unparks: AtomicUsize::new(0),
        });
        let mut server = EventLoop::bind(
            "127.0.0.1:0".parse().unwrap(),
            Arc::clone(&service),
            NetConfig {
                workers: 2,
                ..NetConfig::default()
            },
        )
        .unwrap();

        let mut client = TcpStream::connect(server.addr()).unwrap();
        client.write_all(b"ping").unwrap();
        let mut buf = [0_u8; 4];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        drop(client);
        server.shutdown();

        let started = service.started.lock().unwrap();
        let workers: HashSet<usize> = started.iter().map(|(w, _)| *w).collect();
        assert_eq!(workers, HashSet::from([0, 1]), "one start per worker");
        let threads: HashSet<std::thread::ThreadId> = started.iter().map(|(_, t)| *t).collect();
        assert_eq!(threads.len(), 2, "each worker started on its own thread");
        assert!(service.batches.load(Ordering::Relaxed) >= 1);
        // Every wait is bracketed by park/unpark.
        assert!(service.parks.load(Ordering::Relaxed) >= 2);
        assert!(service.unparks.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn graceful_shutdown_flushes_pending_responses() {
        let mut server = start_echo(2);
        let mut clients: Vec<TcpStream> = (0..16)
            .map(|_| TcpStream::connect(server.addr()).unwrap())
            .collect();
        // Every client sends a request; none has read its response yet.
        for (i, c) in clients.iter_mut().enumerate() {
            c.write_all(format!("drain-{i}\n").as_bytes()).unwrap();
        }
        server.shutdown();
        // All responses must still arrive, then EOF.
        for (i, c) in clients.iter_mut().enumerate() {
            let mut got = Vec::new();
            c.read_to_end(&mut got).unwrap();
            assert_eq!(got, format!("drain-{i}\n").into_bytes(), "client {i}");
        }
    }

    #[test]
    fn max_connections_sheds_excess_accepts_with_a_reply() {
        let mut server = EventLoop::bind(
            "127.0.0.1:0".parse().unwrap(),
            echo_service(),
            NetConfig {
                workers: 1,
                max_connections: 2,
                shed_reply: b"BUSY\n".to_vec(),
                ..NetConfig::default()
            },
        )
        .unwrap();
        let mut keep: Vec<TcpStream> = (0..2)
            .map(|_| TcpStream::connect(server.addr()).unwrap())
            .collect();
        for (i, c) in keep.iter_mut().enumerate() {
            c.write_all(format!("keep-{i}\n").as_bytes()).unwrap();
            let mut buf = vec![0_u8; 7];
            c.read_exact(&mut buf).unwrap();
        }
        // The third connection is shed at accept: the configured reply
        // arrives, then EOF — never a served request. The client sends
        // nothing first, so its bytes cannot race the server's close into
        // an ECONNRESET.
        let mut extra = TcpStream::connect(server.addr()).unwrap();
        let mut buf = Vec::new();
        extra.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"BUSY\n", "shed connection gets the courtesy reply");
        assert!(server.stats().refused >= 1);
        server.shutdown();
    }

    #[test]
    fn exhausted_byte_budget_sheds_accepts_until_it_recovers() {
        // A tiny byte budget and a client that refuses to read: the echoed
        // responses pile up in the server's write buffer, exhausting the
        // ledger, so the next accept is shed. Draining the pile recovers
        // the budget and accepts resume.
        let mut server = EventLoop::bind(
            "127.0.0.1:0".parse().unwrap(),
            echo_service(),
            NetConfig {
                workers: 1,
                max_total_bytes: 8 * 1024,
                shed_reply: b"BUSY\n".to_vec(),
                // A watermark above the byte budget so the *global* ledger,
                // not the per-connection limit, is what trips.
                high_watermark: 1024 * 1024,
                ..NetConfig::default()
            },
        )
        .unwrap();

        let mut hog = TcpStream::connect(server.addr()).unwrap();
        // Push newline-framed filler the client never reads until the
        // echoed responses pile past the 8 KiB budget (kernel socket
        // buffers absorb an unpredictable amount first). A plain
        // `write_all` can wedge forever here: the server throttles this
        // connection the instant the ledger trips, which may land *inside*
        // a blocking write — so use a write timeout and partial writes,
        // resuming mid-line so every 4096th byte is still a newline the
        // echo service can frame on. Exit only once the ledger is over
        // budget AND the hog's writes are blocked: with the client not
        // reading, nothing can flush, so that state cannot un-exhaust
        // behind our back.
        hog.set_write_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let line = {
            let mut l = vec![b'x'; 4095];
            l.push(b'\n');
            l
        };
        let mut sent = 0_usize;
        let mut offset = 0_usize;
        let mut write_blocked = false;
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while server.stats().bytes_buffered < 8 * 1024 || !write_blocked {
            assert!(
                std::time::Instant::now() < deadline,
                "budget never exhausted (buffered {} after {} bytes sent)",
                server.stats().bytes_buffered,
                sent
            );
            match hog.write(&line[offset..]) {
                Ok(n) => {
                    sent += n;
                    offset = (offset + n) % line.len();
                    write_blocked = false;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    write_blocked = true;
                }
                Err(e) => panic!("pushing into hog: {e}"),
            }
        }

        // With the ledger pinned over its ceiling, a fresh accept is shed.
        // Retry with a read timeout in case a transiently admitted
        // connection slips through a recovery blip — an admitted echo
        // connection that was sent nothing would otherwise block forever.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let shed = loop {
            assert!(
                std::time::Instant::now() < deadline,
                "never saw a shed accept"
            );
            let mut refused = TcpStream::connect(server.addr()).unwrap();
            refused
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let mut buf = Vec::new();
            match refused.read_to_end(&mut buf) {
                Ok(_) => break buf, // reply then EOF: the shed path
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue; // admitted and idle — drop it, try again
                }
                Err(e) => panic!("probing the admission wall: {e}"),
            }
        };
        assert_eq!(shed, b"BUSY\n", "byte-pressure shed gets the reply too");
        assert!(server.stats().refused >= 1);

        // Drain everything the server buffered; the ledger recovers and a
        // new connection is admitted and served.
        hog.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let mut sink = vec![0_u8; 64 * 1024];
        let mut drain_hog = |hog: &mut TcpStream| loop {
            match hog.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break
                }
                Err(e) => panic!("draining hog: {e}"),
            }
        };
        drain_hog(&mut hog);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let mut fresh = TcpStream::connect(server.addr()).unwrap();
            fresh.write_all(b"hello\n").unwrap();
            let mut first = [0_u8; 1];
            fresh.read_exact(&mut first).unwrap();
            if first[0] == b'h' {
                let mut rest = [0_u8; 5];
                fresh.read_exact(&mut rest).unwrap();
                assert_eq!(&rest, b"ello\n");
                break;
            }
            // Still shedding ("BUSY\n"): the ledger has not recovered yet.
            // The server may also still be echoing previously pushed
            // filler, so keep draining the hog between probes.
            assert!(
                std::time::Instant::now() < deadline,
                "budget never recovered"
            );
            drain_hog(&mut hog);
            std::thread::sleep(Duration::from_millis(20));
        }
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_but_live_ones_survive() {
        let mut server = EventLoop::bind(
            "127.0.0.1:0".parse().unwrap(),
            echo_service(),
            NetConfig {
                workers: 2,
                // Generous timeout-to-ping ratio (16:1) so a scheduler
                // stall on a loaded CI runner cannot reap the live
                // connection and flake the test.
                idle_timeout: Some(Duration::from_millis(800)),
                ..NetConfig::default()
            },
        )
        .unwrap();

        let mut idle = TcpStream::connect(server.addr()).unwrap();
        let mut live = TcpStream::connect(server.addr()).unwrap();

        // The live connection keeps making requests well past the idle
        // timeout; the idle one never sends a byte.
        for i in 0..30 {
            live.write_all(format!("tick-{i}\n").as_bytes()).unwrap();
            let mut buf = vec![0_u8; format!("tick-{i}\n").len()];
            live.read_exact(&mut buf).unwrap();
            std::thread::sleep(Duration::from_millis(50));
        }

        // The idle connection must have been reaped: EOF (or a reset).
        idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut got = Vec::new();
        match idle.read_to_end(&mut got) {
            Ok(_) => assert!(got.is_empty(), "idle connection received data"),
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
        }

        // The live connection still works after the reap.
        live.write_all(b"still-here\n").unwrap();
        let mut buf = [0_u8; 11];
        live.read_exact(&mut buf).unwrap();
        assert_eq!(&buf[..], b"still-here\n");
        assert_eq!(server.stats().current_connections, 1);
        server.shutdown();
    }

    #[test]
    fn request_budget_closes_the_connection_after_n_requests() {
        let mut server = EventLoop::bind(
            "127.0.0.1:0".parse().unwrap(),
            echo_service(),
            NetConfig {
                workers: 1,
                max_requests_per_conn: Some(3),
                ..NetConfig::default()
            },
        )
        .unwrap();
        let mut client = TcpStream::connect(server.addr()).unwrap();
        // Five pipelined requests in one write: exactly the budget's worth
        // of responses come back, then the server closes.
        client.write_all(b"one\ntwo\nthree\nfour\nfive\n").unwrap();
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"one\ntwo\nthree\n", "exactly the budget is served");

        // A fresh connection starts with a fresh budget.
        let mut fresh = TcpStream::connect(server.addr()).unwrap();
        fresh.write_all(b"hello\n").unwrap();
        let mut buf = [0_u8; 6];
        fresh.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello\n");
        server.shutdown();
    }
}
