//! Safe wrappers over the raw epoll syscalls: [`Poller`] (one epoll
//! instance) and [`Waker`] (an eventfd that interrupts a blocked
//! [`Poller::wait`] from another thread).

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

use crate::sys;

pub use crate::sys::{EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// One readiness notification returned by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    readiness: u32,
}

impl Event {
    /// The fd has bytes to read (or a pending accept).
    pub fn readable(&self) -> bool {
        self.readiness & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0
    }

    /// The fd can accept more bytes.
    pub fn writable(&self) -> bool {
        self.readiness & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    /// The peer closed its end (or the fd errored); the connection should
    /// be read to EOF and torn down.
    pub fn closed(&self) -> bool {
        self.readiness & (EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0
    }
}

/// An epoll instance plus a reusable event buffer.
pub struct Poller {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

impl Poller {
    /// Creates an epoll instance sized to deliver at most `capacity` events
    /// per [`Poller::wait`] call.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::sys_epoll_create()?,
            buf: vec![sys::EpollEvent::zeroed(); capacity.max(1)],
        })
    }

    /// Registers `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        sys::sys_epoll_add(self.epfd, fd, interest, token)
    }

    /// Registers `fd` for exclusive wakeups (`EPOLLEXCLUSIVE`): when several
    /// pollers watch the same fd, the kernel wakes only one per readiness
    /// edge. Falls back to a plain registration on kernels older than 4.5
    /// (the reactor then degrades to thundering-herd accepts, which is
    /// correct, just less efficient).
    pub fn add_exclusive(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        match sys::sys_epoll_add(self.epfd, fd, interest | sys::EPOLLEXCLUSIVE, token) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
                sys::sys_epoll_add(self.epfd, fd, interest, token)
            }
            Err(e) => Err(e),
        }
    }

    /// Changes `fd`'s interest mask.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        sys::sys_epoll_modify(self.epfd, fd, interest, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::sys_epoll_delete(self.epfd, fd)
    }

    /// Blocks until at least one registered fd is ready (or `timeout`
    /// expires), invoking `on_event` for each notification.
    ///
    /// Events are copied out of the kernel buffer before dispatch, so
    /// `on_event` may freely call [`Poller::add`] / [`Poller::modify`] /
    /// [`Poller::delete`] on this same poller.
    pub fn wait(
        &mut self,
        timeout: Option<Duration>,
        mut on_event: impl FnMut(Event),
    ) -> io::Result<usize> {
        let n = sys::sys_epoll_wait(self.epfd, &mut self.buf, timeout)?;
        for ev in &self.buf[..n] {
            on_event(Event {
                token: ev.token(),
                readiness: ev.readiness(),
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::sys_close(self.epfd);
    }
}

/// An eventfd-backed wakeup channel: any thread holding a [`Waker`] can
/// interrupt the [`Poller`] the paired [`WakeReceiver`] is registered with.
#[derive(Debug, Clone)]
pub struct Waker {
    fd: RawFd,
}

/// The poller-side half of a [`Waker`] pair; owns the fd.
#[derive(Debug)]
pub struct WakeReceiver {
    fd: RawFd,
}

/// Creates a connected `(Waker, WakeReceiver)` pair.
pub fn waker_pair() -> io::Result<(Waker, WakeReceiver)> {
    let fd = sys::sys_eventfd()?;
    Ok((Waker { fd }, WakeReceiver { fd }))
}

impl Waker {
    /// Wakes the paired poller. Safe to call from any thread, any number of
    /// times; wakeups coalesce.
    pub fn wake(&self) -> io::Result<()> {
        sys::sys_eventfd_signal(self.fd)
    }
}

impl WakeReceiver {
    /// The fd to register with the poller (level-triggered `EPOLLIN`).
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Clears pending wakeups so the poller can block again.
    pub fn drain(&self) {
        sys::sys_eventfd_drain(self.fd);
    }
}

impl Drop for WakeReceiver {
    fn drop(&mut self) {
        sys::sys_close(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let mut poller = Poller::new(8).unwrap();
        let (waker, receiver) = waker_pair().unwrap();
        poller.add(receiver.raw_fd(), EPOLLIN, 7).unwrap();

        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake().unwrap();
        });

        let start = Instant::now();
        let mut tokens = Vec::new();
        let n = poller
            .wait(Some(Duration::from_secs(5)), |ev| tokens.push(ev.token))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(tokens, vec![7]);
        assert!(start.elapsed() < Duration::from_secs(4), "woke early");
        receiver.drain();
        handle.join().unwrap();
    }

    #[test]
    fn socket_readiness_flows_through_poller() {
        use std::io::Write;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new(8).unwrap();
        let fd = std::os::unix::io::AsRawFd::as_raw_fd(&server);
        poller.add(fd, EPOLLIN | EPOLLRDHUP, 1).unwrap();

        client.write_all(b"ping").unwrap();
        let mut readable = false;
        poller
            .wait(Some(Duration::from_secs(2)), |ev| readable = ev.readable())
            .unwrap();
        assert!(readable);

        drop(client);
        let mut closed = false;
        poller
            .wait(Some(Duration::from_secs(2)), |ev| closed = ev.closed())
            .unwrap();
        assert!(closed, "EPOLLRDHUP after client close");
    }
}
