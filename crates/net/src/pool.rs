//! A per-worker free list of byte buffers.
//!
//! The serving hot path wants warm `Vec<u8>` capacity for connection input
//! and response segments without paying the allocator per request — but a
//! *per-connection* spare would pin one warm buffer per idle connection,
//! which at thousands of connections is exactly the memory profile the
//! event loop exists to avoid. The pool is therefore **per worker**: when a
//! connection's input drains or a response segment finishes flushing, the
//! buffer goes back to the worker's pool; the next read or response on
//! *any* of that worker's connections reuses it. Two caps bound the pool:
//! at most [`BufPool::max_free`] buffers are retained, and a buffer whose
//! capacity grew beyond [`BufPool::max_capacity`] (a one-off huge response)
//! is dropped rather than pinned.

/// A bounded free list of cleared `Vec<u8>` buffers.
pub struct BufPool {
    free: Vec<Vec<u8>>,
    max_free: usize,
    max_capacity: usize,
}

impl BufPool {
    /// Creates a pool retaining at most `max_free` buffers of at most
    /// `max_capacity` bytes of capacity each.
    pub fn new(max_free: usize, max_capacity: usize) -> BufPool {
        BufPool {
            free: Vec::with_capacity(max_free.min(64)),
            max_free,
            max_capacity: max_capacity.max(1),
        }
    }

    /// Takes a cleared buffer from the pool (empty, but typically with warm
    /// capacity), or a fresh empty one when the pool is dry. The
    /// `net.pool` failpoint simulates a dry pool (a fresh, cold
    /// allocation) so chaos plans cover the grant-miss path.
    pub fn take(&mut self) -> Vec<u8> {
        if rp_fault::point("net.pool").is_some() {
            return Vec::new();
        }
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool. The buffer is cleared; it is dropped
    /// instead of pooled when it has no capacity worth keeping, when its
    /// capacity exceeds the per-buffer cap, or when the pool is full.
    pub fn give(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        if buf.capacity() == 0
            || buf.capacity() > self.max_capacity
            || self.free.len() >= self.max_free
        {
            return;
        }
        self.free.push(buf);
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Total capacity (bytes) currently pinned by the pool.
    pub fn pooled_bytes(&self) -> usize {
        self.free.iter().map(Vec::capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_capacity() {
        let mut pool = BufPool::new(4, 1 << 20);
        let mut buf = pool.take();
        buf.extend_from_slice(&[1_u8; 4096]);
        let ptr = buf.as_ptr();
        pool.give(buf);
        assert_eq!(pool.pooled(), 1);
        let again = pool.take();
        assert!(again.is_empty());
        assert_eq!(
            again.as_ptr(),
            ptr,
            "capacity must be reused, not reallocated"
        );
        assert!(again.capacity() >= 4096);
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn pool_respects_the_buffer_count_cap() {
        let mut pool = BufPool::new(2, 1 << 20);
        for _ in 0..5 {
            pool.give(vec![0_u8; 64]);
        }
        assert_eq!(pool.pooled(), 2, "high-watermark cap on pooled buffers");
    }

    #[test]
    fn oversized_and_empty_buffers_are_dropped() {
        let mut pool = BufPool::new(8, 1024);
        pool.give(Vec::new()); // no capacity: nothing worth pooling
        pool.give(vec![0_u8; 4096]); // over the per-buffer capacity cap
        assert_eq!(pool.pooled(), 0);
        pool.give(vec![0_u8; 512]);
        assert_eq!(pool.pooled(), 1);
        assert!(pool.pooled_bytes() >= 512);
    }
}
