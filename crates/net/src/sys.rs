//! Raw Linux syscall bindings for the reactor.
//!
//! The build environment has no crates.io access, so instead of a `libc`
//! dependency this module declares exactly the entry points the reactor
//! needs (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `fcntl`, `eventfd`,
//! `writev` for scatter-gather flushes, plus `read`/`write`/`close` for
//! the eventfd) directly against the system C library, with thin safe
//! wrappers that translate `-1`/`errno` into [`std::io::Error`].

use std::io;
use std::os::unix::io::RawFd;

/// `EPOLLIN`: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hang-up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP`: peer closed its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// `EPOLLEXCLUSIVE`: wake only one of the epoll instances watching this fd
/// (Linux ≥ 4.5); the kernel-side half of the sharded-accept model.
pub const EPOLLEXCLUSIVE: u32 = 1 << 28;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// One readiness record, as filled in by `epoll_wait`.
///
/// On x86 the kernel ABI packs the struct (no padding between `events` and
/// `data`); other architectures use natural alignment.
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The token registered with the fd (we store the fd itself).
    pub data: u64,
}

impl EpollEvent {
    /// An empty (zeroed) event, used to size `epoll_wait` buffers.
    pub const fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }

    /// The readiness bitmask (copied out of the possibly-packed struct).
    pub fn readiness(&self) -> u32 {
        self.events
    }

    /// The registered token (copied out of the possibly-packed struct).
    pub fn token(&self) -> u64 {
        self.data
    }
}

/// One scatter-gather segment for [`sys_writev`], layout-compatible with
/// the kernel's `struct iovec`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct IoVec {
    /// Start of the segment.
    pub iov_base: *const u8,
    /// Length of the segment in bytes.
    pub iov_len: usize,
}

impl IoVec {
    /// Describes `bytes` as one iovec segment.
    pub fn from_slice(bytes: &[u8]) -> IoVec {
        IoVec {
            iov_base: bytes.as_ptr(),
            iov_len: bytes.len(),
        }
    }

    /// An empty segment (used to initialise fixed iovec arrays).
    pub const fn empty() -> IoVec {
        IoVec {
            iov_base: std::ptr::null(),
            iov_len: 0,
        }
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn writev(fd: i32, iov: *const IoVec, iovcnt: i32) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// `epoll_create1(EPOLL_CLOEXEC)`.
pub fn sys_epoll_create() -> io::Result<RawFd> {
    // SAFETY: no pointers involved; the kernel validates the flag.
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

fn epoll_ctl_with(epfd: RawFd, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
    if let Some(fault) = rp_fault::point("net.epoll_ctl") {
        match fault {
            rp_fault::IoFault::Error(e) => return Err(e),
            // A "short" epoll_ctl has no meaning; treat it as an error too.
            rp_fault::IoFault::Short(_) => {
                return Err(io::Error::from_raw_os_error(12 /* ENOMEM */));
            }
        }
    }
    let mut ev = EpollEvent {
        events: interest,
        data: token,
    };
    // SAFETY: `ev` outlives the call; the kernel copies it before returning.
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

/// `epoll_ctl(EPOLL_CTL_ADD)` registering `fd` with `interest` and `token`.
pub fn sys_epoll_add(epfd: RawFd, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
    epoll_ctl_with(epfd, EPOLL_CTL_ADD, fd, interest, token)
}

/// `epoll_ctl(EPOLL_CTL_MOD)` changing `fd`'s interest set.
pub fn sys_epoll_modify(epfd: RawFd, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
    epoll_ctl_with(epfd, EPOLL_CTL_MOD, fd, interest, token)
}

/// `epoll_ctl(EPOLL_CTL_DEL)` deregistering `fd`.
pub fn sys_epoll_delete(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    // Linux < 2.6.9 required a non-null event for DEL; passing one keeps the
    // call portable and costs nothing.
    epoll_ctl_with(epfd, EPOLL_CTL_DEL, fd, 0, 0)
}

/// `epoll_wait`, retried on `EINTR`. Returns the number of events filled.
pub fn sys_epoll_wait(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout: Option<std::time::Duration>,
) -> io::Result<usize> {
    let timeout_ms = match timeout {
        // Round up so a 100µs timeout does not busy-spin as 0ms.
        Some(t) => i32::try_from(t.as_millis().max(1)).unwrap_or(i32::MAX),
        None => -1,
    };
    loop {
        // SAFETY: the buffer pointer/length pair describes exclusively
        // borrowed, properly sized memory for at most `events.len()` records.
        let ret = unsafe {
            epoll_wait(
                epfd,
                events.as_mut_ptr(),
                events.len().min(i32::MAX as usize) as i32,
                timeout_ms,
            )
        };
        match cvt(ret) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Sets `O_NONBLOCK` on `fd` via `fcntl(F_GETFL)`/`fcntl(F_SETFL)`.
pub fn sys_set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl with GETFL/SETFL takes no pointers.
    let flags = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
    if flags & O_NONBLOCK != 0 {
        return Ok(());
    }
    cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) }).map(|_| ())
}

/// `eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)` — the reactor's wakeup channel.
pub fn sys_eventfd() -> io::Result<RawFd> {
    // SAFETY: no pointers involved.
    cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })
}

/// Writes one 8-byte counter increment to an eventfd (wakes its poller).
pub fn sys_eventfd_signal(fd: RawFd) -> io::Result<()> {
    let one: u64 = 1;
    // SAFETY: 8 valid bytes, as the eventfd ABI requires.
    let ret = unsafe { write(fd, (&one as *const u64).cast(), 8) };
    if ret == 8 {
        Ok(())
    } else if ret < 0 {
        let e = io::Error::last_os_error();
        // A full counter still wakes the poller; treat it as success.
        if e.kind() == io::ErrorKind::WouldBlock {
            Ok(())
        } else {
            Err(e)
        }
    } else {
        Err(io::Error::new(
            io::ErrorKind::WriteZero,
            "short eventfd write",
        ))
    }
}

/// Drains an eventfd's counter so it can signal again (nonblocking).
pub fn sys_eventfd_drain(fd: RawFd) {
    let mut buf = [0_u8; 8];
    // SAFETY: 8 valid bytes for the counter read.
    let _ = unsafe { read(fd, buf.as_mut_ptr(), 8) };
}

/// `writev(fd, iov, iovcnt)` — submits every segment in one syscall.
/// Returns the number of bytes written (possibly short of the total: the
/// kernel stops at the socket buffer, and the caller resumes from its own
/// cursor). Does **not** retry `EINTR`; the flush loop owns that policy.
pub fn sys_writev(fd: RawFd, iov: &[IoVec]) -> io::Result<usize> {
    if let Some(fault) = rp_fault::point("net.writev") {
        match fault {
            rp_fault::IoFault::Error(e) => return Err(e),
            // A scripted short write must still *really write* the bytes it
            // reports — reporting bytes the kernel never saw would advance
            // the flush cursor past unsent data. Clamp the iovec to `n`
            // bytes and submit that (cold path; the allocation is fine).
            rp_fault::IoFault::Short(n) => {
                let mut budget = n.max(1);
                let mut clamped = Vec::with_capacity(iov.len());
                for seg in iov {
                    if budget == 0 {
                        break;
                    }
                    let take = seg.iov_len.min(budget);
                    budget -= take;
                    clamped.push(IoVec {
                        iov_base: seg.iov_base,
                        iov_len: take,
                    });
                }
                return sys_writev_raw(fd, &clamped);
            }
        }
    }
    sys_writev_raw(fd, iov)
}

fn sys_writev_raw(fd: RawFd, iov: &[IoVec]) -> io::Result<usize> {
    // SAFETY: every `IoVec` was built from a live `&[u8]` borrowed for the
    // duration of this call, and the count is clamped to the slice length.
    let ret = unsafe { writev(fd, iov.as_ptr(), iov.len().min(i32::MAX as usize) as i32) };
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret as usize)
    }
}

/// `close(fd)`; errors are ignored (nothing sensible to do in a destructor).
pub fn sys_close(fd: RawFd) {
    // SAFETY: the callers own `fd` and never use it after this call.
    let _ = unsafe { close(fd) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_layout_matches_kernel_abi() {
        // On x86 the kernel packs the struct to 12 bytes; elsewhere natural
        // alignment gives 16. Either way `events` must sit at offset 0.
        let expected = if cfg!(any(target_arch = "x86_64", target_arch = "x86")) {
            12
        } else {
            16
        };
        assert_eq!(std::mem::size_of::<EpollEvent>(), expected);
    }

    #[test]
    fn eventfd_signals_and_drains() {
        let fd = sys_eventfd().expect("eventfd");
        sys_eventfd_signal(fd).expect("signal");
        sys_eventfd_signal(fd).expect("signal twice");
        sys_eventfd_drain(fd);
        sys_close(fd);
    }

    #[test]
    fn epoll_reports_eventfd_readability() {
        let ep = sys_epoll_create().expect("epoll_create1");
        let ev = sys_eventfd().expect("eventfd");
        sys_epoll_add(ep, ev, EPOLLIN, 42).expect("add");

        let mut events = [EpollEvent::zeroed(); 4];
        // Nothing signalled yet: a zero-ish timeout returns no events.
        let n = sys_epoll_wait(ep, &mut events, Some(std::time::Duration::from_millis(1)))
            .expect("wait");
        assert_eq!(n, 0);

        sys_eventfd_signal(ev).expect("signal");
        let n = sys_epoll_wait(ep, &mut events, Some(std::time::Duration::from_millis(100)))
            .expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        sys_epoll_delete(ep, ev).expect("del");
        sys_close(ev);
        sys_close(ep);
    }

    #[test]
    fn writev_gathers_multiple_segments() {
        use std::io::Read;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tx = std::net::TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        let fd = std::os::unix::io::AsRawFd::as_raw_fd(&tx);
        let parts: [&[u8]; 3] = [b"VALUE k", b" 0 3\r\nabc", b"\r\nEND\r\n"];
        let iov: Vec<IoVec> = parts.iter().map(|p| IoVec::from_slice(p)).collect();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let n = sys_writev(fd, &iov).expect("writev");
        assert_eq!(n, total, "a tiny batch fits the socket buffer whole");
        let mut got = vec![0_u8; total];
        rx.read_exact(&mut got).unwrap();
        assert_eq!(got, parts.concat());
    }

    #[test]
    fn set_nonblocking_is_idempotent() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let fd = std::os::unix::io::AsRawFd::as_raw_fd(&listener);
        sys_set_nonblocking(fd).expect("first");
        sys_set_nonblocking(fd).expect("second");
    }
}
