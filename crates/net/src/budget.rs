//! The process-wide byte budget behind global admission control.
//!
//! Per-worker [`BufPool`](crate::pool::BufPool) caps bound what each worker
//! *recycles*, but nothing bounded what all connections together *hold*: a
//! hundred thousand slow readers, each pinning a high-watermark's worth of
//! queued responses, would OOM the process long before any single
//! connection tripped its own limit. [`ByteBudget`] is the shared ledger:
//! every connection charges the bytes sitting in its input and output
//! buffers, accepts are refused while the ledger is exhausted, and open
//! connections get their *reads* paused (which stops them producing more
//! responses) until the ledger recovers.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared ledger of buffered bytes with a hard ceiling.
///
/// Charging is relaxed-atomic and approximate by design: each connection
/// settles its charge after a readiness event, so the ledger can overshoot
/// the ceiling by at most one read chunk per actively reading connection —
/// a bounded error that costs nothing on the hot path. The level is
/// mirrored into the `net_bytes_buffered` gauge at every settle.
#[derive(Debug)]
pub struct ByteBudget {
    used: AtomicUsize,
    max: usize,
}

impl ByteBudget {
    /// A ledger with ceiling `max` bytes (`usize::MAX` disables it).
    pub fn new(max: usize) -> ByteBudget {
        ByteBudget {
            used: AtomicUsize::new(0),
            max: max.max(1),
        }
    }

    /// Adds `n` buffered bytes to the ledger.
    pub fn charge(&self, n: usize) {
        if n > 0 {
            let now = self.used.fetch_add(n, Ordering::Relaxed) + n;
            rp_obs::global().net.bytes_buffered.set(now as u64);
        }
    }

    /// Removes `n` buffered bytes from the ledger.
    pub fn release(&self, n: usize) {
        if n > 0 {
            let now = self.used.fetch_sub(n, Ordering::Relaxed).saturating_sub(n);
            rp_obs::global().net.bytes_buffered.set(now as u64);
        }
    }

    /// `true` while the ledger is at or over its ceiling — the signal to
    /// refuse accepts and pause reads. The `net.budget` failpoint can
    /// force exhaustion so chaos plans exercise the shed/throttle paths
    /// without actually buffering gigabytes.
    pub fn exhausted(&self) -> bool {
        if rp_fault::point("net.budget").is_some() {
            return true;
        }
        self.used.load(Ordering::Relaxed) >= self.max
    }

    /// `true` once the ledger has drained below ⅞ of the ceiling — the
    /// hysteresis band that keeps throttled connections from flapping
    /// between paused and resumed on every flushed byte.
    pub fn recovered(&self) -> bool {
        self.used.load(Ordering::Relaxed) <= self.max - self.max / 8
    }

    /// Bytes currently charged.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// The configured ceiling.
    pub fn max(&self) -> usize {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_and_releases_balance() {
        let budget = ByteBudget::new(1000);
        budget.charge(600);
        assert_eq!(budget.used(), 600);
        assert!(!budget.exhausted());
        budget.charge(500);
        assert!(budget.exhausted());
        assert!(!budget.recovered());
        budget.release(300);
        assert_eq!(budget.used(), 800);
        assert!(!budget.exhausted());
        assert!(budget.recovered(), "875 is the recovery bound for 1000");
        budget.release(800);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let budget = ByteBudget::new(usize::MAX);
        budget.charge(1 << 40);
        assert!(!budget.exhausted());
        assert!(budget.recovered());
        budget.release(1 << 40);
    }

    #[test]
    fn zero_sized_charges_are_free() {
        let budget = ByteBudget::new(10);
        budget.charge(0);
        budget.release(0);
        assert_eq!(budget.used(), 0);
    }
}
