//! The N-worker event loop: one nonblocking listener shared by every
//! worker's epoll instance (`EPOLLEXCLUSIVE`, so the kernel hands each
//! ready accept to exactly one worker — `SO_REUSEPORT`-style sharding with
//! a single socket), plus per-worker connection tables, buffer pools and
//! wakeup eventfds.

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::budget::ByteBudget;
use crate::conn::Connection;
use crate::poller::{waker_pair, Event, Poller, WakeReceiver, Waker, EPOLLIN};
use crate::pool::BufPool;
use crate::sys::sys_set_nonblocking;
use crate::{NetConfig, Service};

/// Token for the shared listener in every worker's poller.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token for a worker's wakeup eventfd.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// `ENFILE`: the system-wide file table is full.
const ENFILE: i32 = 23;
/// `EMFILE`: the process's fd table is full.
const EMFILE: i32 = 24;

fn min_timeout(current: Option<Duration>, candidate: Duration) -> Option<Duration> {
    Some(current.map_or(candidate, |c| c.min(candidate)))
}

/// Counters aggregated across workers.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Connections accepted since the server started.
    pub accepted: u64,
    /// Connections currently open.
    pub current_connections: usize,
    /// Connections refused at admission (the `max_connections` limit or
    /// an exhausted byte budget).
    pub refused: u64,
    /// Accepted connections lost to OS-level setup failures (nonblocking
    /// toggle, epoll registration).
    pub accept_errors: u64,
    /// Connections closed by the idle reaper.
    pub idle_reaped: u64,
    /// Draining connections force-closed at the drain deadline because
    /// the peer never drained the final flush.
    pub drains_expired: u64,
    /// Times the listener was backed off after `accept()` returned
    /// EMFILE/ENFILE (fd-table exhaustion).
    pub accept_backoffs: u64,
    /// Bytes currently buffered across all connections (the level the
    /// global byte budget bounds).
    pub bytes_buffered: usize,
}

struct Shared {
    listener: TcpListener,
    shutdown: AtomicBool,
    accepted: AtomicU64,
    refused: AtomicU64,
    accept_errors: AtomicU64,
    idle_reaped: AtomicU64,
    drains_expired: AtomicU64,
    accept_backoffs: AtomicU64,
    current: AtomicUsize,
    /// The process-wide buffered-byte ledger (admission control).
    bytes: ByteBudget,
}

/// A running epoll event-loop server.
///
/// Thousands of idle connections cost two buffers each, not a thread: the
/// server spawns exactly [`NetConfig::workers`] threads, ever.
pub struct EventLoop {
    addr: SocketAddr,
    shared: Arc<Shared>,
    wakers: Vec<Waker>,
    workers: Vec<JoinHandle<()>>,
}

impl EventLoop {
    /// Binds `addr` and starts `config.workers` worker threads serving
    /// `service`.
    pub fn bind<S: Service>(
        addr: SocketAddr,
        service: Arc<S>,
        config: NetConfig,
    ) -> io::Result<EventLoop> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            listener,
            shutdown: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
            idle_reaped: AtomicU64::new(0),
            drains_expired: AtomicU64::new(0),
            accept_backoffs: AtomicU64::new(0),
            current: AtomicUsize::new(0),
            bytes: ByteBudget::new(config.max_total_bytes),
        });

        let workers_wanted = config.workers.max(1);
        let mut wakers = Vec::with_capacity(workers_wanted);
        let mut workers = Vec::with_capacity(workers_wanted);
        for idx in 0..workers_wanted {
            let (waker, receiver) = waker_pair()?;
            let worker = Worker::new(
                idx,
                Arc::clone(&shared),
                Arc::clone(&service),
                config.clone(),
                receiver,
            )?;
            wakers.push(waker);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rp-net-worker-{idx}"))
                    .spawn(move || worker.run())?,
            );
        }

        Ok(EventLoop {
            addr,
            shared,
            wakers,
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of worker threads (the server's entire thread budget).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Aggregated connection counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            refused: self.shared.refused.load(Ordering::Relaxed),
            accept_errors: self.shared.accept_errors.load(Ordering::Relaxed),
            idle_reaped: self.shared.idle_reaped.load(Ordering::Relaxed),
            drains_expired: self.shared.drains_expired.load(Ordering::Relaxed),
            accept_backoffs: self.shared.accept_backoffs.load(Ordering::Relaxed),
            current_connections: self.shared.current.load(Ordering::Relaxed),
            bytes_buffered: self.shared.bytes.used(),
        }
    }

    /// Graceful shutdown: stop accepting, answer every request already
    /// received, flush every queued response (bounded by
    /// [`NetConfig::drain_timeout`]), close, and join the workers.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Drain the wakers: joining a worker closes its eventfd, so a
        // repeat shutdown (Drop always issues one) must not write to the
        // stale — possibly kernel-reused — fd numbers.
        for waker in self.wakers.drain(..) {
            let _ = waker.wake();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct Worker<S: Service> {
    idx: usize,
    shared: Arc<Shared>,
    service: Arc<S>,
    config: NetConfig,
    poller: Poller,
    wake: WakeReceiver,
    conns: HashMap<u64, Connection<S>>,
    /// Shared read scratch buffer (one per worker, not per event).
    scratch: Vec<u8>,
    /// The worker's buffer free list: connection input buffers and
    /// response segments cycle through here instead of the allocator.
    pool: BufPool,
    /// Set when a dispatch left at least one connection throttled on the
    /// global byte budget. While set, the worker polls on a short leash —
    /// the budget may be freed by *another* worker's flushes, which cannot
    /// wake this one's epoll.
    throttled_reads: bool,
    /// Listener backed off after `accept()` hit EMFILE/ENFILE: EPOLLIN on
    /// the (level-triggered) listener is disarmed until this deadline, or
    /// the worker would spin re-accepting into an exhausted fd table.
    listener_paused_until: Option<Instant>,
    /// Connections currently in `Draining` during normal operation. The
    /// drain-deadline sweep only visits these, and their presence puts the
    /// poll timeout on a leash (an absent peer generates no events, so the
    /// deadline needs a timer).
    draining_conns: HashSet<u64>,
}

impl<S: Service> Worker<S> {
    fn new(
        idx: usize,
        shared: Arc<Shared>,
        service: Arc<S>,
        config: NetConfig,
        wake: WakeReceiver,
    ) -> io::Result<Self> {
        let poller = Poller::new(config.events_per_wait.max(8))?;
        poller.add(wake.raw_fd(), EPOLLIN, TOKEN_WAKER)?;
        poller.add_exclusive(shared.listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        let scratch = vec![0_u8; config.read_chunk.max(512)];
        let pool = BufPool::new(config.pool_buffers, config.pool_buffer_capacity);
        Ok(Worker {
            idx,
            shared,
            service,
            config,
            poller,
            wake,
            conns: HashMap::new(),
            scratch,
            pool,
            throttled_reads: false,
            listener_paused_until: None,
            draining_conns: HashSet::new(),
        })
    }

    fn run(mut self) {
        let mut pending: Vec<Event> = Vec::new();
        let mut draining = false;
        let mut drain_deadline = Instant::now();
        // Idle reaping needs periodic wakeups even when no fd is ready; a
        // quarter of the timeout keeps reap latency within ~1.25x of the
        // configured value without busy-waking.
        let sweep_every = self
            .config
            .idle_timeout
            .map(|t| (t / 4).clamp(Duration::from_millis(10), Duration::from_secs(1)));
        let mut next_sweep = sweep_every.map(|every| Instant::now() + every);
        // Created here — on the worker thread — so services can pin
        // thread-local resources (e.g. a QSBR read handle) to this worker.
        let mut wstate = self.service.on_worker_start(self.idx);

        // Draining connections need a timer (an absent peer generates no
        // readiness), but the deadline does not need to be sharp.
        let drain_leash = (self.config.drain_timeout / 4)
            .clamp(Duration::from_millis(10), Duration::from_secs(1));

        loop {
            let now = Instant::now();
            if let Some(at) = self.listener_paused_until {
                if now >= at && !draining {
                    // The backoff elapsed: re-arm the listener. Accept
                    // sharding survives because the other workers kept
                    // their EPOLLEXCLUSIVE registrations all along.
                    let _ = self.poller.add_exclusive(
                        self.shared.listener.as_raw_fd(),
                        EPOLLIN,
                        TOKEN_LISTENER,
                    );
                    self.listener_paused_until = None;
                }
            }
            let mut timeout = if draining || self.throttled_reads {
                // Draining: poll fast for the deadline. Throttled: the byte
                // budget may recover via another worker's flushes, which
                // cannot wake this epoll — check on a short leash.
                Some(Duration::from_millis(10))
            } else {
                // Wake in time for the next idle sweep; with no sweeps
                // configured, block indefinitely (shutdown arrives via the
                // waker).
                next_sweep.map(|at| at.saturating_duration_since(now))
            };
            if let Some(at) = self.listener_paused_until {
                timeout = min_timeout(timeout, at.saturating_duration_since(now));
            }
            if !self.draining_conns.is_empty() {
                timeout = min_timeout(timeout, drain_leash);
            }
            self.service.on_park(&mut wstate);
            let waited = self.poller.wait(timeout, |ev| pending.push(ev));
            self.service.on_unpark(&mut wstate);
            if waited.is_err() {
                // epoll itself failed; nothing useful left to drive.
                break;
            }
            if !pending.is_empty() {
                rp_obs::global()
                    .net
                    .batch_size
                    .for_worker(self.idx)
                    .record(pending.len() as u64);
            }

            for ev in pending.drain(..) {
                match ev.token {
                    TOKEN_WAKER => self.wake.drain(),
                    TOKEN_LISTENER => {
                        if !draining {
                            self.accept_ready();
                        }
                    }
                    fd => self.connection_event(fd, ev, &mut wstate),
                }
            }
            // The batch is fully serviced: every response queued and
            // flushed as far as the sockets allow, no borrowed state held.
            self.service.on_batch_end(&mut wstate);

            if self.throttled_reads && self.shared.bytes.recovered() {
                self.unthrottle_all();
            }

            if let (Some(every), Some(at)) = (sweep_every, next_sweep) {
                let now = Instant::now();
                if now >= at && !draining {
                    self.reap_idle(now);
                    next_sweep = Some(now + every);
                }
            }

            if !draining {
                self.expire_drains(Instant::now());
            }

            if !draining && self.shared.shutdown.load(Ordering::SeqCst) {
                draining = true;
                drain_deadline = Instant::now() + self.config.drain_timeout;
                let _ = self.poller.delete(self.shared.listener.as_raw_fd());
                let tokens: Vec<u64> = self.conns.keys().copied().collect();
                for token in tokens {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.begin_drain(
                            &self.service,
                            &mut wstate,
                            &self.config,
                            &mut self.pool,
                            &self.shared.bytes,
                            &mut self.scratch,
                        );
                    }
                    self.reconcile(token);
                }
                self.service.on_batch_end(&mut wstate);
            }

            if draining {
                if self.conns.is_empty() {
                    break;
                }
                if Instant::now() >= drain_deadline {
                    let tokens: Vec<u64> = self.conns.keys().copied().collect();
                    for token in tokens {
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.force_close();
                        }
                        self.reconcile(token);
                    }
                    break;
                }
            }
        }
        let live = self
            .shared
            .current
            .fetch_sub(self.conns.len(), Ordering::Relaxed);
        rp_obs::global()
            .net
            .connections
            .set(live.saturating_sub(self.conns.len()) as u64);
    }

    /// Accepts until the backlog is empty (`EWOULDBLOCK`). Admission is
    /// checked here, before the connection costs anything: over the
    /// connection limit or with the global byte budget exhausted, the peer
    /// gets a best-effort shed reply and an immediate close instead of a
    /// silent hang.
    fn accept_ready(&mut self) {
        loop {
            let accepted = match rp_fault::point("net.accept") {
                Some(rp_fault::IoFault::Error(e)) => Err(e),
                // A "short" accept has no meaning; fall through.
                Some(rp_fault::IoFault::Short(_)) | None => self.shared.listener.accept(),
            };
            match accepted {
                Ok((mut stream, peer)) => {
                    let live = self.shared.current.load(Ordering::Relaxed);
                    if live >= self.config.max_connections || self.shared.bytes.exhausted() {
                        self.shared.refused.fetch_add(1, Ordering::Relaxed);
                        let obs = rp_obs::global();
                        obs.net.conns_shed_total.inc();
                        // The payload is the *live* connection count at the
                        // moment of the shed, not the configured limit: a
                        // trace reader can tell "shed at the connection
                        // wall" from "shed under byte pressure" (live well
                        // below the limit) at a glance.
                        obs.trace.record(rp_obs::TraceKind::ConnShed, live as u64);
                        // Courtesy reply so the peer sees *why* instead of a
                        // bare RST. The just-accepted socket is still in
                        // blocking mode with an empty send buffer, so this
                        // small write cannot block; failures (peer already
                        // gone) are ignored.
                        if !self.config.shed_reply.is_empty() {
                            use std::io::Write;
                            let _ = stream.write_all(&self.config.shed_reply);
                        }
                        drop(stream);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    // The reactor's contract is nonblocking I/O everywhere;
                    // the raw fcntl mirrors what std's set_nonblocking does.
                    if let Err(e) = sys_set_nonblocking(stream.as_raw_fd()) {
                        self.lost_at_setup(e);
                        continue;
                    }
                    let state = self.service.on_connect(peer);
                    let conn = Connection::<S>::new(stream, state, &self.config);
                    let token = conn.fd() as u64;
                    if let Err(e) = self
                        .poller
                        .add(conn.fd(), conn.registered_interest(), token)
                    {
                        self.lost_at_setup(e);
                        continue;
                    }
                    self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                    let live = self.shared.current.fetch_add(1, Ordering::Relaxed) + 1;
                    let obs = rp_obs::global();
                    obs.net.accepts_total.inc();
                    obs.net.connections.set(live as u64);
                    self.conns.insert(token, conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if matches!(e.raw_os_error(), Some(EMFILE) | Some(ENFILE)) => {
                    // The fd table is exhausted. The listener is
                    // level-triggered, so breaking would re-fire its
                    // readiness instantly and spin the worker at 100% while
                    // accepting nothing — disarm EPOLLIN on it and come
                    // back after a backoff instead. The pending peer waits
                    // in the accept queue (or gets picked up by a worker
                    // that still has fds).
                    self.pause_listener(e);
                    break;
                }
                // Transient accept errors (ECONNABORTED etc.): keep going.
                Err(_) => break,
            }
        }
    }

    /// Disarms the listener until a short backoff elapses (see
    /// `listener_paused_until`): `accept()` said the process is out of
    /// file descriptors, and retrying in a tight loop cannot fix that.
    fn pause_listener(&mut self, error: io::Error) {
        let _ = self.poller.delete(self.shared.listener.as_raw_fd());
        self.listener_paused_until = Some(Instant::now() + self.config.accept_backoff);
        self.shared.accept_backoffs.fetch_add(1, Ordering::Relaxed);
        let obs = rp_obs::global();
        obs.net.accept_backoffs_total.inc();
        obs.trace.record(
            rp_obs::TraceKind::AcceptBackoff,
            error.raw_os_error().unwrap_or(0) as u64,
        );
    }

    /// Accounts for an accepted connection that died during OS-level setup
    /// (nonblocking toggle or epoll registration). Without this the socket
    /// just evaporated: no counter moved, no trace event fired, and a
    /// `rpstat` watcher saw the kernel's accept queue shrink with nothing
    /// to show for it.
    fn lost_at_setup(&self, error: io::Error) {
        self.shared.accept_errors.fetch_add(1, Ordering::Relaxed);
        let obs = rp_obs::global();
        obs.net.accept_errors_total.inc();
        obs.trace.record(
            rp_obs::TraceKind::AcceptError,
            error.raw_os_error().unwrap_or(0) as u64,
        );
    }

    fn connection_event(&mut self, token: u64, ev: Event, wstate: &mut S::Worker) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if ev.writable() {
            conn.on_writable(&mut self.pool, &self.shared.bytes);
        }
        if ev.readable() || ev.closed() {
            conn.on_readable(
                &self.service,
                wstate,
                &self.config,
                &mut self.pool,
                &self.shared.bytes,
                &mut self.scratch,
            );
        }
        if conn.is_throttled() {
            self.throttled_reads = true;
        }
        self.reconcile(token);
    }

    /// Resumes reads on every budget-throttled connection once the global
    /// byte ledger has recovered (hysteresis lives in
    /// [`ByteBudget::recovered`]). Level-triggered epoll re-fires readiness
    /// for bytes that arrived while reads were paused, so nothing is lost.
    fn unthrottle_all(&mut self) {
        let throttled: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.is_throttled())
            .map(|(token, _)| *token)
            .collect();
        for token in throttled {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.clear_throttle();
            }
            self.reconcile(token);
        }
        self.throttled_reads = false;
    }

    /// Closes every connection that has made no progress for the configured
    /// idle timeout.
    fn reap_idle(&mut self, now: Instant) {
        let Some(timeout) = self.config.idle_timeout else {
            return;
        };
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.idle_since(now) >= timeout)
            .map(|(token, _)| *token)
            .collect();
        for token in expired {
            if let Some(conn) = self.conns.get_mut(&token) {
                let idle_us = conn.idle_since(now).as_micros() as u64;
                conn.close_idle();
                self.shared.idle_reaped.fetch_add(1, Ordering::Relaxed);
                let obs = rp_obs::global();
                obs.net.idle_reaped_total.inc();
                obs.trace.record(rp_obs::TraceKind::IdleReap, idle_us);
            }
            self.reconcile(token);
        }
    }

    /// Force-closes every normal-operation draining connection whose peer
    /// has not drained the final flush within the drain timeout. Without
    /// this, one zero-window/absent reader with `idle_timeout: None` (the
    /// default) holds its buffers and fd forever: its flush stays Blocked
    /// and no further event ever fires for it.
    fn expire_drains(&mut self, now: Instant) {
        if self.draining_conns.is_empty() {
            return;
        }
        let timeout = self.config.drain_timeout;
        let expired: Vec<u64> = self
            .draining_conns
            .iter()
            .copied()
            .filter(|token| {
                self.conns
                    .get(token)
                    .is_some_and(|conn| conn.drain_expired(now, timeout))
            })
            .collect();
        for token in expired {
            if let Some(conn) = self.conns.get_mut(&token) {
                let queued = conn.queued_bytes() as u64;
                conn.force_close();
                self.shared.drains_expired.fetch_add(1, Ordering::Relaxed);
                let obs = rp_obs::global();
                obs.net.drains_expired_total.inc();
                obs.trace.record(rp_obs::TraceKind::DrainExpired, queued);
            }
            self.reconcile(token);
        }
    }

    /// Applies a connection's post-event state to the poller: deregisters
    /// finished connections, updates changed interest masks.
    fn reconcile(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.finished() {
            self.drop_connection(token);
            return;
        }
        if conn.is_draining() {
            // Draining is terminal (never back to Open); membership is
            // cleared when the connection drops.
            self.draining_conns.insert(token);
        }
        let want = conn.desired_interest();
        if want != conn.registered_interest() {
            if self.poller.modify(conn.fd(), want, token).is_ok() {
                conn.set_registered_interest(want);
            } else {
                self.drop_connection(token);
            }
        }
    }

    /// Deregisters and drops one connection, recycling its warm buffers
    /// into the worker's pool.
    fn drop_connection(&mut self, token: u64) {
        self.draining_conns.remove(&token);
        if let Some(mut conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.fd());
            conn.recycle(&mut self.pool, &self.shared.bytes);
            let live = self.shared.current.fetch_sub(1, Ordering::Relaxed);
            rp_obs::global()
                .net
                .connections
                .set(live.saturating_sub(1) as u64);
        }
    }
}
