//! The per-connection readiness-driven state machine.

use std::io::{self, Read};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};

use crate::buffer::{FlushState, WriteBuf};
use crate::poller::{EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::{Action, NetConfig, Service};

/// Connection lifecycle.
///
/// ```text
///        reads enabled            service said Close, peer EOF,
///        (unless backpressured)   or server shutdown
///   Open ────────────────────────────────────────────▶ Draining
///     │                                                   │ flush
///     │ io error                                          ▼
///     └─────────────────────────────────────────────▶  Closed
/// ```
///
/// *Open*: request bytes are read as they arrive, complete frames are
/// handed to the service, responses queue in the write buffer. *Draining*:
/// no more reads; queued responses still flush. *Closed*: the worker
/// deregisters and drops the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    Open,
    Draining,
    Closed,
}

pub(crate) struct Connection<S: Service> {
    stream: TcpStream,
    state: S::Conn,
    input: Vec<u8>,
    out: WriteBuf,
    phase: ConnState,
    /// The interest mask currently registered with the poller.
    registered: u32,
}

impl<S: Service> Connection<S> {
    pub(crate) fn new(stream: TcpStream, state: S::Conn, config: &NetConfig) -> Self {
        Connection {
            stream,
            state,
            input: Vec::new(),
            out: WriteBuf::new(config.high_watermark),
            phase: ConnState::Open,
            registered: EPOLLIN | EPOLLRDHUP,
        }
    }

    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// The interest mask this connection wants right now: reads while open
    /// and under the backpressure watermark, writes while bytes are queued.
    pub(crate) fn desired_interest(&self) -> u32 {
        let mut mask = EPOLLRDHUP;
        if self.phase == ConnState::Open && !self.out.over_watermark() {
            mask |= EPOLLIN;
        }
        if !self.out.is_empty() {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// The mask registered with the poller (tracked to skip no-op MODs).
    pub(crate) fn registered_interest(&self) -> u32 {
        self.registered
    }

    pub(crate) fn set_registered_interest(&mut self, mask: u32) {
        self.registered = mask;
    }

    pub(crate) fn finished(&self) -> bool {
        matches!(self.phase, ConnState::Closed)
    }

    /// Reads until `EWOULDBLOCK`, EOF, or the per-turn budget is exhausted
    /// (level-triggered epoll re-arms if bytes remain), then processes and
    /// flushes. Any I/O error closes the connection. `chunk` is the
    /// worker's shared scratch buffer — allocating per readiness event
    /// would put an alloc+memset on the hottest path.
    pub(crate) fn on_readable(
        &mut self,
        service: &S,
        worker: &mut S::Worker,
        config: &NetConfig,
        chunk: &mut [u8],
    ) {
        if self.phase != ConnState::Open {
            // Late readiness after Close/Drain: nothing to read any more.
            return self.flush(service);
        }
        let mut budget = config.read_budget;
        while budget > 0 {
            match self.stream.read(chunk) {
                Ok(0) => {
                    // Peer finished sending. Answer what it already sent,
                    // flush, close.
                    self.phase = ConnState::Draining;
                    break;
                }
                Ok(n) => {
                    budget = budget.saturating_sub(n);
                    self.input.extend_from_slice(&chunk[..n]);
                    // Hand frames to the service between reads so one
                    // pipelining-heavy peer cannot queue unbounded input.
                    self.process(service, worker);
                    if self.out.over_watermark() || self.phase != ConnState::Open {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.phase = ConnState::Closed;
                    return;
                }
            }
        }
        self.process(service, worker);
        self.flush(service);
    }

    pub(crate) fn on_writable(&mut self, service: &S) {
        self.flush(service);
    }

    /// Server shutdown: one final opportunistic read (requests the kernel
    /// has already buffered get answered), then stop reading and drain.
    pub(crate) fn begin_drain(
        &mut self,
        service: &S,
        worker: &mut S::Worker,
        config: &NetConfig,
        chunk: &mut [u8],
    ) {
        if self.phase == ConnState::Open {
            self.on_readable(service, worker, config, chunk);
        }
        if self.phase == ConnState::Open {
            self.phase = ConnState::Draining;
        }
        self.flush(service);
    }

    /// Forwards buffered input to the service and queues its responses.
    fn process(&mut self, service: &S, worker: &mut S::Worker) {
        if self.input.is_empty() || self.phase == ConnState::Closed {
            return;
        }
        match service.on_data(worker, &mut self.state, &mut self.input, &mut self.out) {
            Action::Continue => {}
            Action::Close => {
                if self.phase == ConnState::Open {
                    self.phase = ConnState::Draining;
                }
            }
        }
    }

    fn flush(&mut self, _service: &S) {
        match self.out.flush_to(&mut self.stream) {
            Ok(FlushState::Drained) => {
                if self.phase == ConnState::Draining {
                    self.phase = ConnState::Closed;
                }
            }
            Ok(FlushState::Blocked) => {}
            Err(_) => self.phase = ConnState::Closed,
        }
    }

    /// Abandons the connection regardless of queued data (drain deadline).
    pub(crate) fn force_close(&mut self) {
        self.phase = ConnState::Closed;
    }
}
