//! The per-connection readiness-driven state machine.

use std::io::{self, Read};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crate::budget::ByteBudget;
use crate::buffer::{FdSink, FlushState, WriteBuf};
use crate::poller::{EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::pool::BufPool;
use crate::{Action, ConnIo, NetConfig, Service};

/// Connection lifecycle.
///
/// ```text
///        reads enabled            service said Close, peer EOF,
///        (unless backpressured)   request budget spent, idle reap,
///   Open ──────────────────────── or server shutdown ─▶ Draining
///     │                                                   │ flush
///     │ io error                                          ▼
///     └─────────────────────────────────────────────▶  Closed
/// ```
///
/// *Open*: request bytes are read as they arrive, complete frames are
/// handed to the service, responses queue in the write buffer. *Draining*:
/// no more reads; queued responses still flush. *Closed*: the worker
/// deregisters and drops the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    Open,
    Draining,
    Closed,
}

pub(crate) struct Connection<S: Service> {
    stream: TcpStream,
    state: S::Conn,
    input: Vec<u8>,
    out: WriteBuf,
    phase: ConnState,
    /// The interest mask currently registered with the poller.
    registered: u32,
    /// Requests served over the connection's lifetime (the budget meter).
    served: u64,
    /// Last moment the connection made progress (bytes read from the peer
    /// or response bytes flushed to it); drives the idle reaper.
    last_activity: Instant,
    /// Bytes currently charged against the global [`ByteBudget`] (the
    /// input + output buffer level as of the last settle).
    charged: usize,
    /// Reads paused because the global byte budget was exhausted; cleared
    /// by the worker once the budget recovers.
    throttled: bool,
    /// When the connection entered `Draining`. A peer that never drains
    /// its final flush (zero window, absent reader) is force-closed once
    /// this is older than the drain timeout — a drain must not hang on
    /// one unflushable socket.
    draining_since: Option<Instant>,
}

impl<S: Service> Connection<S> {
    pub(crate) fn new(stream: TcpStream, state: S::Conn, config: &NetConfig) -> Self {
        Connection {
            stream,
            state,
            input: Vec::new(),
            out: WriteBuf::new(config.high_watermark),
            phase: ConnState::Open,
            registered: EPOLLIN | EPOLLRDHUP,
            served: 0,
            last_activity: Instant::now(),
            charged: 0,
            throttled: false,
            draining_since: None,
        }
    }

    /// Open → Draining, stamping the drain clock exactly once.
    fn start_draining(&mut self) {
        if self.phase == ConnState::Open {
            self.phase = ConnState::Draining;
        }
        if self.draining_since.is_none() {
            self.draining_since = Some(Instant::now());
        }
    }

    /// `true` when the connection has sat in `Draining` with bytes still
    /// queued for at least `timeout` — the signal to stop waiting for a
    /// peer that is never going to read its final responses.
    pub(crate) fn drain_expired(&self, now: Instant, timeout: Duration) -> bool {
        self.phase == ConnState::Draining
            && self
                .draining_since
                .is_some_and(|since| now.saturating_duration_since(since) >= timeout)
    }

    /// Bytes still queued toward the peer (trace payload for an expired
    /// drain).
    pub(crate) fn queued_bytes(&self) -> usize {
        self.out.len()
    }

    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// The interest mask this connection wants right now: reads while open
    /// and under the backpressure watermark, writes while bytes are queued.
    pub(crate) fn desired_interest(&self) -> u32 {
        let mut mask = EPOLLRDHUP;
        if self.phase == ConnState::Open && !self.out.over_watermark() && !self.throttled {
            mask |= EPOLLIN;
        }
        if !self.out.is_empty() {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// The mask registered with the poller (tracked to skip no-op MODs).
    pub(crate) fn registered_interest(&self) -> u32 {
        self.registered
    }

    pub(crate) fn set_registered_interest(&mut self, mask: u32) {
        self.registered = mask;
    }

    pub(crate) fn finished(&self) -> bool {
        matches!(self.phase, ConnState::Closed)
    }

    pub(crate) fn is_draining(&self) -> bool {
        matches!(self.phase, ConnState::Draining)
    }

    /// `true` when the connection has made no progress for `now -
    /// last_activity >= idle_timeout`.
    pub(crate) fn idle_since(&self, now: Instant) -> std::time::Duration {
        now.saturating_duration_since(self.last_activity)
    }

    /// Reads until `EWOULDBLOCK`, EOF, or the per-turn budget is exhausted
    /// (level-triggered epoll re-arms if bytes remain), then processes and
    /// flushes. Any I/O error closes the connection. `chunk` is the
    /// worker's shared scratch buffer — allocating per readiness event
    /// would put an alloc+memset on the hottest path. `pool` is the
    /// worker's buffer free list: the input buffer and response segments
    /// cycle through it, so a steady-state request allocates nothing.
    pub(crate) fn on_readable(
        &mut self,
        service: &S,
        worker: &mut S::Worker,
        config: &NetConfig,
        pool: &mut BufPool,
        bytes: &ByteBudget,
        chunk: &mut [u8],
    ) {
        if self.phase != ConnState::Open {
            // Late readiness after Close/Drain: nothing to read any more.
            self.flush(pool);
            return self.settle(bytes);
        }
        let mut budget = config.read_budget;
        while budget > 0 {
            if bytes.exhausted() {
                // Global byte budget spent: pause this connection's reads
                // (stopping it producing more buffered responses) until
                // the worker sees the ledger recover.
                self.throttled = true;
                let obs = rp_obs::global();
                obs.net.backpressure_stalls_total.inc();
                obs.trace
                    .record(rp_obs::TraceKind::Backpressure, bytes.used() as u64);
                break;
            }
            let read_result = match rp_fault::point("net.read") {
                Some(rp_fault::IoFault::Error(e)) => Err(e),
                // A scripted short read still reads real bytes — it only
                // clamps how many arrive per call.
                Some(rp_fault::IoFault::Short(n)) => {
                    let cap = n.clamp(1, chunk.len());
                    self.stream.read(&mut chunk[..cap])
                }
                None => self.stream.read(chunk),
            };
            match read_result {
                Ok(0) => {
                    // Peer finished sending. Answer what it already sent,
                    // flush, close.
                    self.start_draining();
                    break;
                }
                Ok(n) => {
                    budget = budget.saturating_sub(n);
                    self.last_activity = Instant::now();
                    if self.input.capacity() == 0 {
                        // First bytes since the buffer was recycled: start
                        // from the worker's pool, not the allocator.
                        self.input = pool.take();
                    }
                    self.input.extend_from_slice(&chunk[..n]);
                    // Hand frames to the service between reads so one
                    // pipelining-heavy peer cannot queue unbounded input.
                    self.process(service, worker, config, pool);
                    if self.out.over_watermark() {
                        // Backpressure trip: reads pause until the queued
                        // bytes drain below the watermark.
                        let obs = rp_obs::global();
                        obs.net.watermark_trips_total.inc();
                        obs.trace
                            .record(rp_obs::TraceKind::Backpressure, self.out.len() as u64);
                        break;
                    }
                    if self.phase != ConnState::Open {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.phase = ConnState::Closed;
                    return;
                }
            }
        }
        self.process(service, worker, config, pool);
        self.flush(pool);
        if self.input.is_empty() && self.input.capacity() > 0 {
            // Fully consumed: hand the warm buffer back so an idle
            // connection pins nothing.
            pool.give(std::mem::take(&mut self.input));
        }
        self.settle(bytes);
    }

    pub(crate) fn on_writable(&mut self, pool: &mut BufPool, bytes: &ByteBudget) {
        self.flush(pool);
        self.settle(bytes);
    }

    /// Reconciles this connection's buffered-byte charge with the global
    /// ledger (called after every readiness event that may have changed
    /// the buffer levels).
    fn settle(&mut self, bytes: &ByteBudget) {
        let now = self.input.len() + self.out.len();
        if now > self.charged {
            bytes.charge(now - self.charged);
        } else {
            bytes.release(self.charged - now);
        }
        self.charged = now;
    }

    /// `true` while reads are paused on the global byte budget.
    pub(crate) fn is_throttled(&self) -> bool {
        self.throttled
    }

    /// Resumes reads after the global byte budget recovered (the caller
    /// reconciles the poller interest).
    pub(crate) fn clear_throttle(&mut self) {
        self.throttled = false;
    }

    /// Server shutdown: one final opportunistic read (requests the kernel
    /// has already buffered get answered), then stop reading and drain.
    pub(crate) fn begin_drain(
        &mut self,
        service: &S,
        worker: &mut S::Worker,
        config: &NetConfig,
        pool: &mut BufPool,
        bytes: &ByteBudget,
        chunk: &mut [u8],
    ) {
        if self.phase == ConnState::Open {
            self.on_readable(service, worker, config, pool, bytes, chunk);
        }
        self.start_draining();
        self.flush(pool);
        self.settle(bytes);
    }

    /// Idle reap: the peer made no progress for the configured timeout.
    /// Whatever is queued is abandoned — an idle peer is by definition not
    /// reading — and the connection closes on the next reconcile.
    pub(crate) fn close_idle(&mut self) {
        self.phase = ConnState::Closed;
    }

    /// Forwards buffered input to the service and queues its responses.
    fn process(
        &mut self,
        service: &S,
        worker: &mut S::Worker,
        config: &NetConfig,
        pool: &mut BufPool,
    ) {
        if self.input.is_empty() || self.phase == ConnState::Closed {
            return;
        }
        let quota = match config.max_requests_per_conn {
            Some(max) => max.saturating_sub(self.served),
            None => u64::MAX,
        };
        // A panicking service must not take the worker (and every other
        // connection it serves) down with it. The connection's own state is
        // what the unwind may have torn — connection state and buffers are
        // poisoned-and-shed below, and the worker/service state is required
        // to stay consistent across an unwinding `on_data` (the kv service
        // keeps per-worker state in plain counters and a read-side handle,
        // both fine to reuse), which is what the `AssertUnwindSafe` asserts.
        let outcome = {
            let input = &mut self.input;
            let out = &mut self.out;
            let state = &mut self.state;
            catch_unwind(AssertUnwindSafe(move || {
                // Lets a chaos plan inject a handler panic without needing a
                // deliberately-broken service.
                let _ = rp_fault::point("net.on_data");
                let mut io = ConnIo {
                    input,
                    out: out.with_pool(pool),
                    requests: 0,
                    request_quota: quota,
                };
                let action = service.on_data(worker, state, &mut io);
                (action, io.requests)
            }))
        };
        let (action, requests) = match outcome {
            Ok(pair) => pair,
            Err(_) => {
                // Poisoned connection: the decoder may have died mid-frame,
                // so nothing buffered can be trusted. Drop the input, tell
                // the peer in protocol terms, and shed the connection —
                // the worker keeps serving everyone else.
                self.input.clear();
                if !config.panic_reply.is_empty() {
                    self.out.push(config.panic_reply.clone());
                }
                self.start_draining();
                let obs = rp_obs::global();
                obs.net.conn_panics_total.inc();
                obs.trace
                    .record(rp_obs::TraceKind::ConnPanic, self.fd() as u64);
                return;
            }
        };
        self.served = self.served.saturating_add(requests);
        match action {
            Action::Continue => {}
            Action::Close => self.start_draining(),
        }
        if let Some(max) = config.max_requests_per_conn {
            if self.served >= max {
                // Budget spent: everything answered so far still flushes,
                // then the connection closes.
                self.start_draining();
            }
        }
    }

    fn flush(&mut self, pool: &mut BufPool) {
        let before = self.out.len();
        // Scatter-gather: every queued segment (header, shared payload,
        // trailer, the next pipelined reply...) goes out in one `writev`
        // batch instead of one `write` each.
        let mut sink = FdSink {
            fd: self.stream.as_raw_fd(),
        };
        match self.out.flush_vectored(&mut sink, pool) {
            Ok(FlushState::Drained) => {
                if self.phase == ConnState::Draining {
                    self.phase = ConnState::Closed;
                }
            }
            Ok(FlushState::Blocked) => {}
            Err(_) => self.phase = ConnState::Closed,
        }
        if self.out.len() < before {
            // The peer accepted bytes: that is progress too (a client
            // slowly streaming a large response down is not idle).
            self.last_activity = Instant::now();
        }
    }

    /// Abandons the connection regardless of queued data (drain deadline).
    pub(crate) fn force_close(&mut self) {
        self.phase = ConnState::Closed;
    }

    /// Returns the connection's warm buffers to the worker's pool and
    /// releases its byte-budget charge (called once, as the worker
    /// deregisters a finished connection).
    pub(crate) fn recycle(&mut self, pool: &mut BufPool, bytes: &ByteBudget) {
        if self.input.capacity() > 0 {
            pool.give(std::mem::take(&mut self.input));
        }
        self.out.recycle_into(pool);
        self.settle(bytes);
    }
}
